package workload

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

func sampleMany(d TokenDist, n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	sort.Ints(out)
	return out
}

func pct(sorted []int, q float64) int {
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// TestTable2PercentilesRecovered checks the core substitution claim: the
// fitted log-normals reproduce the published p50/p90 of each dataset within
// sampling tolerance.
func TestTable2PercentilesRecovered(t *testing.T) {
	const n = 40000
	for _, d := range Datasets() {
		for _, side := range []struct {
			name string
			dist TokenDist
		}{{"prompt", d.Prompt}, {"decode", d.Decode}} {
			s := sampleMany(side.dist, n, 7)
			p50 := float64(pct(s, 0.5))
			p90 := float64(pct(s, 0.9))
			if math.Abs(p50-side.dist.P50)/side.dist.P50 > 0.08 {
				t.Errorf("%s %s: sampled p50 %v, want ~%v", d.Name, side.name, p50, side.dist.P50)
			}
			if math.Abs(p90-side.dist.P90)/side.dist.P90 > 0.10 {
				t.Errorf("%s %s: sampled p90 %v, want ~%v", d.Name, side.name, p90, side.dist.P90)
			}
		}
	}
}

func TestTokenDistClamps(t *testing.T) {
	d := TokenDist{P50: 10000, P90: 16000, Max: 12000}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		v := d.Sample(rng)
		if v < 1 || v > 12000 {
			t.Fatalf("sample %d outside [1,12000]", v)
		}
	}
}

func TestQuantileMatchesSpec(t *testing.T) {
	d := ShareGPT.Prompt
	if got := d.Quantile(0.5); math.Abs(got-1730) > 1 {
		t.Errorf("p50 quantile = %v", got)
	}
	if got := d.Quantile(0.9); math.Abs(got-5696) > 1 {
		t.Errorf("p90 quantile = %v", got)
	}
}

func TestNormQuantileSymmetric(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.9, 0.975} {
		if got := normQuantile(p) + normQuantile(1-p); math.Abs(got) > 1e-6 {
			t.Errorf("normQuantile asymmetric at %v: sum %v", p, got)
		}
	}
	if math.Abs(normQuantile(0.9)-z90) > 1e-6 {
		t.Errorf("normQuantile(0.9) = %v, want %v", normQuantile(0.9), z90)
	}
}

func TestDatasetByName(t *testing.T) {
	d, err := DatasetByName("Azure-Code")
	if err != nil || d.Name != "Azure-Code" {
		t.Fatalf("DatasetByName: %v, %v", d, err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestPoissonRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Poisson{QPS: 4}
	var t0 sim.Time
	const n = 20000
	for i := 0; i < n; i++ {
		t0 = p.Next(rng, t0)
	}
	rate := float64(n) / t0.Seconds()
	if math.Abs(rate-4)/4 > 0.05 {
		t.Errorf("empirical rate %v, want ~4", rate)
	}
}

func TestDiurnalRates(t *testing.T) {
	d := Diurnal{LowQPS: 2, HighQPS: 5, HalfPeriod: 15 * sim.Minute}
	if d.RateAt(0) != 2 || d.RateAt(10*sim.Minute) != 2 {
		t.Error("first half-period should be low")
	}
	if d.RateAt(16*sim.Minute) != 5 || d.RateAt(29*sim.Minute) != 5 {
		t.Error("second half-period should be high")
	}
	if d.RateAt(31*sim.Minute) != 2 {
		t.Error("third half-period should be low again")
	}

	// Empirical rates inside each phase.
	rng := rand.New(rand.NewSource(9))
	var t0 sim.Time
	countLow, countHigh := 0, 0
	for t0 < 2*sim.Hour {
		t0 = d.Next(rng, t0)
		if d.RateAt(t0) == 2 {
			countLow++
		} else {
			countHigh++
		}
	}
	// One hour at each rate: expect ~7200 low and ~18000 high.
	if math.Abs(float64(countLow)-7200)/7200 > 0.1 {
		t.Errorf("low-phase arrivals %d, want ~7200", countLow)
	}
	if math.Abs(float64(countHigh)-18000)/18000 > 0.1 {
		t.Errorf("high-phase arrivals %d, want ~18000", countHigh)
	}
}

func defaultSpec(n int) Spec {
	return Spec{
		Dataset:  AzureCode,
		Tiers:    EqualTiers(qos.Table3()),
		Arrivals: Poisson{QPS: 3},
		Requests: n,
		Seed:     11,
	}
}

func TestGenerateBasics(t *testing.T) {
	reqs, err := Generate(defaultSpec(3000))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3000 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	counts := map[string]int{}
	var prev sim.Time
	for i, r := range reqs {
		if err := r.Validate(); err != nil {
			t.Fatalf("request %d invalid: %v", i, err)
		}
		if r.Arrival < prev {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		prev = r.Arrival
		if r.ID != uint64(i+1) {
			t.Fatalf("ID %d at index %d", r.ID, i)
		}
		counts[r.Class.Name]++
	}
	for _, name := range []string{"Q1", "Q2", "Q3"} {
		frac := float64(counts[name]) / 3000
		if math.Abs(frac-1.0/3) > 0.05 {
			t.Errorf("tier %s fraction %v, want ~1/3", name, frac)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(defaultSpec(500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(defaultSpec(500))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("request %d differs between identical specs", i)
		}
	}
}

func TestGenerateLowPriorityFraction(t *testing.T) {
	spec := defaultSpec(5000)
	spec.Tiers = WithLowPriority(spec.Tiers, 0.2)
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	for _, r := range reqs {
		if r.Priority == qos.Low {
			low++
		}
	}
	frac := float64(low) / float64(len(reqs))
	if math.Abs(frac-0.2) > 0.03 {
		t.Errorf("low-priority fraction %v, want ~0.2", frac)
	}
}

func TestWeightedTiers(t *testing.T) {
	classes := qos.Table3()
	tiers, err := WeightedTiers(classes, []float64{0.7, 0.15, 0.15})
	if err != nil {
		t.Fatal(err)
	}
	spec := defaultSpec(6000)
	spec.Tiers = tiers
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	q1 := 0
	for _, r := range reqs {
		if r.Class.Name == "Q1" {
			q1++
		}
	}
	if frac := float64(q1) / 6000; math.Abs(frac-0.7) > 0.03 {
		t.Errorf("Q1 fraction %v, want ~0.7", frac)
	}

	if _, err := WeightedTiers(classes, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := WeightedTiers(classes, []float64{0.5, 0.4, 0.2}); err == nil {
		t.Error("fractions summing to 1.1 accepted")
	}
	if _, err := WeightedTiers(classes, []float64{-0.1, 0.6, 0.5}); err == nil {
		t.Error("negative fraction accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := defaultSpec(100)
	bad.Requests = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero requests accepted")
	}
	bad = defaultSpec(100)
	bad.Arrivals = nil
	if _, err := Generate(bad); err == nil {
		t.Error("nil arrivals accepted")
	}
	bad = defaultSpec(100)
	bad.Tiers = nil
	if _, err := Generate(bad); err == nil {
		t.Error("no tiers accepted")
	}
	bad = defaultSpec(100)
	bad.Tiers = []Tier{{Class: qos.Table3()[0], Fraction: 0.5}}
	if _, err := Generate(bad); err == nil {
		t.Error("fractions not summing to 1 accepted")
	}
	bad = defaultSpec(100)
	bad.Dataset.Prompt.P90 = 1
	if _, err := Generate(bad); err == nil {
		t.Error("p90 < p50 accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	spec := defaultSpec(200)
	spec.Tiers = WithLowPriority(spec.Tiers, 0.3)
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("round trip length %d != %d", len(back), len(reqs))
	}
	for i := range reqs {
		if !reflect.DeepEqual(back[i], reqs[i]) {
			t.Fatalf("request %d differs after round trip:\n got %+v\nwant %+v", i, back[i], reqs[i])
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString(`{"kind":"martian"}`)); err == nil {
		t.Error("bad kind accepted")
	}
	if _, err := ReadTrace(bytes.NewBufferString(`{not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestCloneResetsExecutionState(t *testing.T) {
	reqs, err := Generate(defaultSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	reqs[0].RecordPrefill(reqs[0].PromptTokens, 5*sim.Second)
	reqs[0].Relegated = true
	cl := Clone(reqs)
	if cl[0].PrefilledTokens != 0 || cl[0].DecodedTokens != 0 || cl[0].Relegated {
		t.Error("clone did not reset execution state")
	}
	if cl[0].PromptTokens != reqs[0].PromptTokens || cl[0].Arrival != reqs[0].Arrival {
		t.Error("clone lost workload fields")
	}
	if cl[0] == reqs[0] {
		t.Error("clone aliases original")
	}
}

func TestLongThreshold(t *testing.T) {
	if got := LongThreshold(AzureCode); math.Abs(float64(got)-6251) > 1 {
		t.Errorf("LongThreshold(AzureCode) = %d, want ~6251", got)
	}
}

// Property: samples are always within [1, max] for arbitrary valid dists.
func TestSampleRangeProperty(t *testing.T) {
	f := func(p50 uint16, spread uint8, seed int64) bool {
		d := TokenDist{P50: float64(p50%5000) + 1}
		d.P90 = d.P50 * (1 + float64(spread%50)/10)
		if d.Validate() != nil {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			v := d.Sample(rng)
			if v < 1 || v > DefaultMaxTokens {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: generated arrival sequences are strictly compatible with the
// requested QPS in expectation (within generous tolerance).
func TestGenerateRateProperty(t *testing.T) {
	for _, qps := range []float64{1, 3, 10} {
		spec := defaultSpec(4000)
		spec.Arrivals = Poisson{QPS: qps}
		reqs, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		last := reqs[len(reqs)-1].Arrival
		rate := float64(len(reqs)) / last.Seconds()
		if math.Abs(rate-qps)/qps > 0.08 {
			t.Errorf("QPS %v: empirical %v", qps, rate)
		}
	}
}

var sinkReqs []*request.Request

func BenchmarkGenerate(b *testing.B) {
	spec := defaultSpec(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reqs, err := Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		sinkReqs = reqs
	}
}

func TestGammaRateAndBurstiness(t *testing.T) {
	const n = 30000
	gaps := func(cv float64) (mean, std float64) {
		rng := rand.New(rand.NewSource(6))
		g := Gamma{QPS: 4, CV: cv}
		var prev sim.Time
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			next := g.Next(rng, prev)
			gap := (next - prev).Seconds()
			sum += gap
			sumSq += gap * gap
			prev = next
		}
		mean = sum / n
		std = math.Sqrt(sumSq/n - mean*mean)
		return mean, std
	}
	for _, cv := range []float64{0.5, 1.0, 2.0} {
		mean, std := gaps(cv)
		if math.Abs(mean-0.25)/0.25 > 0.05 {
			t.Errorf("CV %v: mean gap %v, want ~0.25", cv, mean)
		}
		if got := std / mean; math.Abs(got-cv)/cv > 0.08 {
			t.Errorf("CV %v: empirical CV %v", cv, got)
		}
	}
	// CV defaulting and validation.
	rng := rand.New(rand.NewSource(1))
	if (Gamma{QPS: 1}).Next(rng, 0) <= 0 {
		t.Error("default-CV gamma produced non-positive gap")
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-QPS gamma did not panic")
		}
	}()
	(Gamma{}).Next(rng, 0)
}

func TestGammaBurstierTailsThanPoisson(t *testing.T) {
	// With CV=2, short gaps cluster: the fraction of gaps below a tenth
	// of the mean should clearly exceed Poisson's.
	count := func(p ArrivalProcess) int {
		rng := rand.New(rand.NewSource(9))
		var prev sim.Time
		short := 0
		for i := 0; i < 20000; i++ {
			next := p.Next(rng, prev)
			if (next - prev).Seconds() < 0.025 {
				short++
			}
			prev = next
		}
		return short
	}
	poisson := count(Poisson{QPS: 4})
	bursty := count(Gamma{QPS: 4, CV: 2})
	if bursty <= poisson {
		t.Errorf("gamma CV=2 short gaps %d not above Poisson %d", bursty, poisson)
	}
}

func TestPerTierDatasetOverride(t *testing.T) {
	code := AzureCode
	conv := AzureConv
	classes := qos.Table3()
	tiers := []Tier{
		{Class: classes[0], Fraction: 0.5, Dataset: &conv},
		{Class: classes[2], Fraction: 0.5, Dataset: &code},
	}
	spec := Spec{
		Dataset:  ShareGPT, // overridden by both tiers
		Tiers:    tiers,
		Arrivals: Poisson{QPS: 5},
		Requests: 6000,
		Seed:     31,
	}
	reqs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var convDecodes, codeDecodes []int
	for _, r := range reqs {
		switch r.Class.Name {
		case "Q1":
			convDecodes = append(convDecodes, r.DecodeTokens)
		case "Q3":
			codeDecodes = append(codeDecodes, r.DecodeTokens)
		}
	}
	sort.Ints(convDecodes)
	sort.Ints(codeDecodes)
	// Azure-Conv decodes (p50 41) vs Azure-Code decodes (p50 8).
	if m := convDecodes[len(convDecodes)/2]; m < 25 || m > 60 {
		t.Errorf("conv-tier median decode = %d, want ~41", m)
	}
	if m := codeDecodes[len(codeDecodes)/2]; m < 5 || m > 12 {
		t.Errorf("code-tier median decode = %d, want ~8", m)
	}

	// Invalid per-tier dataset rejected.
	bad := spec
	badDS := Dataset{Name: "bad", Prompt: TokenDist{P50: 10, P90: 5}, Decode: AzureCode.Decode}
	bad.Tiers = []Tier{{Class: classes[0], Fraction: 1, Dataset: &badDS}}
	if _, err := Generate(bad); err == nil {
		t.Error("invalid per-tier dataset accepted")
	}
}
