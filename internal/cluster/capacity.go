package cluster

import (
	"fmt"

	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// TraceGen produces a trace for a target arrival rate. Capacity searches
// call it repeatedly with candidate rates.
type TraceGen func(qps float64) ([]*request.Request, error)

// SearchOptions tunes the capacity searches.
type SearchOptions struct {
	// MaxViolations is the admissible violation fraction (paper: 1%).
	MaxViolations float64
	// Horizon bounds each probe run; sim.Forever drains fully.
	Horizon sim.Time
	// HorizonFor, when set, derives the horizon from each probe's trace
	// (e.g. last arrival + max SLO), overriding Horizon. Sustained-load
	// capacity measurements need this: an unbounded drain lets relaxed
	// tiers finish inside their long deadlines no matter the backlog.
	HorizonFor func([]*request.Request) sim.Time
	// Tolerance ends the QPS bisection when hi-lo < Tolerance (default 0.05).
	Tolerance float64
	// MaxQPS bounds the upward search (default 64).
	MaxQPS float64
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.MaxViolations == 0 {
		o.MaxViolations = 0.01
	}
	if o.Horizon == 0 {
		o.Horizon = sim.Forever
	}
	if o.Tolerance == 0 {
		o.Tolerance = 0.05
	}
	if o.MaxQPS == 0 {
		o.MaxQPS = 64
	}
	return o
}

// MaxGoodput finds the highest per-replica arrival rate (QPS) a
// single-replica deployment sustains while keeping violations within
// opts.MaxViolations — the paper's goodput metric (§4.1.2). It returns the
// rate and the summary of the run at that rate.
func MaxGoodput(cfg model.Config, factory SchedulerFactory, gen TraceGen, opts SearchOptions) (float64, *metrics.Summary, error) {
	opts = opts.withDefaults()
	probe := func(qps float64) (*metrics.Summary, bool, error) {
		trace, err := gen(qps)
		if err != nil {
			return nil, false, err
		}
		horizon := opts.Horizon
		if opts.HorizonFor != nil {
			horizon = opts.HorizonFor(trace)
		}
		sum, err := RunShared(cfg, 1, factory, trace, horizon)
		if err != nil {
			return nil, false, err
		}
		return sum, sum.ViolationRate(metrics.All) <= opts.MaxViolations, nil
	}

	// Exponential climb to bracket the capacity.
	lo := 0.0
	var loSum *metrics.Summary
	hi := 0.25
	for hi <= opts.MaxQPS {
		sum, ok, err := probe(hi)
		if err != nil {
			return 0, nil, err
		}
		if !ok {
			break
		}
		lo, loSum = hi, sum
		hi *= 2
	}
	if lo == 0 {
		// Even the smallest probe failed.
		if _, ok, err := probe(0.05); err != nil {
			return 0, nil, err
		} else if !ok {
			return 0, nil, fmt.Errorf("cluster: no feasible rate found")
		}
		lo = 0.05
	}
	if hi > opts.MaxQPS {
		hi = opts.MaxQPS
	}

	// Bisect.
	for hi-lo > opts.Tolerance {
		mid := (lo + hi) / 2
		sum, ok, err := probe(mid)
		if err != nil {
			return 0, nil, err
		}
		if ok {
			lo, loSum = mid, sum
		} else {
			hi = mid
		}
	}
	return lo, loSum, nil
}

// MinReplicas finds the smallest shared-cluster size serving the fixed
// trace within the violation target (Table 4's QoServe-(10) result). The
// trace is regenerated per probe via gen(0) to avoid state reuse; maxN
// bounds the search.
func MinReplicas(cfg model.Config, factory SchedulerFactory, gen func() ([]*request.Request, error), maxN int, opts SearchOptions) (int, *metrics.Summary, error) {
	opts = opts.withDefaults()
	lo, hi := 1, maxN
	var best *metrics.Summary
	bestN := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		trace, err := gen()
		if err != nil {
			return 0, nil, err
		}
		horizon := opts.Horizon
		if opts.HorizonFor != nil {
			horizon = opts.HorizonFor(trace)
		}
		sum, err := RunShared(cfg, mid, factory, trace, horizon)
		if err != nil {
			return 0, nil, err
		}
		if sum.ViolationRate(metrics.All) <= opts.MaxViolations {
			best, bestN = sum, mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestN < 0 {
		return 0, nil, fmt.Errorf("cluster: %d replicas insufficient", maxN)
	}
	return bestN, best, nil
}
