package cluster

import (
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/profile"
	"qoserve/internal/qos"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// scoreStub is a transparent FeaturePredictor: latency proportional to the
// work the features describe, so tests can arrange exact outcomes.
type scoreStub struct{}

func (scoreStub) PredictFeats(x [profile.FeatureCount]float64) sim.Time {
	us := 50 + x[profile.FeatChunkTokens] + 0.1*x[profile.FeatPrefillCtx] +
		20*x[profile.FeatNumDecodes] + 0.01*x[profile.FeatSumDecodeCtx]
	return sim.Time(us) * sim.Microsecond
}

func (s scoreStub) PredictSafeFeats(x [profile.FeatureCount]float64) sim.Time {
	return s.PredictFeats(x)
}

func snapsAt(snaps []replica.LoadSnapshot) func(int) replica.LoadSnapshot {
	return func(i int) replica.LoadSnapshot { return snaps[i] }
}

func loadsAt(loads []int) func(int) int {
	return func(i int) int { return loads[i] }
}

func TestPredictedLatencyPicksLowestPredictedLatency(t *testing.T) {
	b := &PredictedLatency{Predictor: scoreStub{}}
	snaps := []replica.LoadSnapshot{
		{QueuedRequests: 3, PendingPrefillTokens: 24576, ChunkBudgetTokens: 512}, // deep prefill backlog
		{ActiveDecodes: 2, SumDecodeCtx: 600, MaxDecodeCtx: 400},                 // light decode load
		{QueuedRequests: 1, PendingPrefillTokens: 16384, ChunkBudgetTokens: 512}, // same queue length, heavy tokens
	}
	// Queue lengths alone would favour replica 2 (load 1 vs 2); the token
	// backlog says replica 1 finishes the request sooner.
	idx := b.PickPredicted(3, loadsAt([]int{3, 2, 1}), snapsAt(snaps), 1024, 16)
	if idx != 1 {
		t.Fatalf("picked %d, want 1 (lowest predicted latency, not lowest load)", idx)
	}
}

func TestPredictedLatencyTieBreaksByLoadThenIndex(t *testing.T) {
	b := &PredictedLatency{Predictor: scoreStub{}}
	same := replica.LoadSnapshot{QueuedRequests: 1, PendingPrefillTokens: 2048, ChunkBudgetTokens: 256}
	snaps := []replica.LoadSnapshot{same, same, same}
	if idx := b.PickPredicted(3, loadsAt([]int{5, 2, 2}), snapsAt(snaps), 512, 8); idx != 1 {
		t.Fatalf("picked %d, want 1 (least loaded among score ties)", idx)
	}
	if idx := b.PickPredicted(3, loadsAt([]int{2, 2, 2}), snapsAt(snaps), 512, 8); idx != 0 {
		t.Fatalf("picked %d, want 0 (lowest index among full ties)", idx)
	}
}

func TestPredictedLatencyNilPredictorFallsBack(t *testing.T) {
	loads := []int{4, 1, 2}
	snaps := make([]replica.LoadSnapshot, 3)
	b := &PredictedLatency{}
	if idx := b.PickPredicted(3, loadsAt(loads), snapsAt(snaps), 512, 8); idx != 1 {
		t.Fatalf("picked %d, want 1 (LeastLoaded default fallback)", idx)
	}
	if idx := b.PickIndex(3, loadsAt(loads)); idx != 1 {
		t.Fatalf("PickIndex = %d, want 1", idx)
	}
	rr := &PredictedLatency{Fallback: &AtomicRoundRobin{}}
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		seen[rr.PickPredicted(3, loadsAt(loads), snapsAt(snaps), 512, 8)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round-robin fallback hit %d of 3 targets", len(seen))
	}
}

// TestPredictedPickSteadyStateAllocFree is the zero-alloc guard for the
// scoring hot path: one gateway pick must not allocate, no matter how many
// replicas are scored (qoservevet hotpathalloc enforces the same contract
// statically via the //qoserve:hotpath annotations).
func TestPredictedPickSteadyStateAllocFree(t *testing.T) {
	b := &PredictedLatency{Predictor: scoreStub{}}
	snaps := []replica.LoadSnapshot{
		{QueuedRequests: 2, PendingPrefillTokens: 8192, ChunkBudgetTokens: 512},
		{ActiveDecodes: 6, SumDecodeCtx: 9000, MaxDecodeCtx: 2048},
		{QueuedRequests: 1, PendingPrefillTokens: 512, ActiveDecodes: 1, SumDecodeCtx: 700, MaxDecodeCtx: 700, ChunkBudgetTokens: 256},
		{},
	}
	loads := []int{3, 6, 2, 0}
	load, snap := loadsAt(loads), snapsAt(snaps)
	allocs := testing.AllocsPerRun(200, func() {
		if idx := b.PickPredicted(len(snaps), load, snap, 2048, 64); idx < 0 || idx >= len(snaps) {
			t.Fatalf("pick %d out of range", idx)
		}
	})
	if allocs != 0 {
		t.Fatalf("predicted pick allocates %v times per call, want 0", allocs)
	}
}

// TestPredictedAwareRoutesAroundBusyReplica runs the sim-side adapter over
// real replicas: a replica chewing a giant prompt must lose the next
// request to an idle peer, even though both hold "one request" by count.
func TestPredictedAwareRoutesAroundBusyReplica(t *testing.T) {
	engine := sim.NewEngine()
	mc := model.Llama3_8B_A100_TP1()
	newRep := func() *replica.Replica {
		r, err := replica.New(engine, mc, sched.NewSarathi(sched.FCFS, 512))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	reps := []*replica.Replica{newRep(), newRep()}
	giant := &request.Request{ID: 1, App: "Q3", Class: qos.Table3()[2], PromptTokens: 16384, DecodeTokens: 8}
	reps[0].Submit(giant)

	b := &PredictedAware{Latency: PredictedLatency{Predictor: scoreStub{}}}
	short := &request.Request{ID: 2, App: "Q1", Class: qos.Table3()[0], PromptTokens: 128, DecodeTokens: 8, EstDecodeTokens: 8}
	if idx := b.Pick(reps, short); idx != 1 {
		t.Fatalf("picked %d, want 1 (idle replica)", idx)
	}
}
