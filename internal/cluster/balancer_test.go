package cluster

import (
	"sync"
	"testing"
)

func TestAtomicRoundRobinCyclesEvenly(t *testing.T) {
	var b AtomicRoundRobin
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		idx := b.PickIndex(4, nil)
		if idx < 0 || idx >= 4 {
			t.Fatalf("pick %d out of range", idx)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("target %d picked %d times, want 100", i, c)
		}
	}
	if b.PickIndex(1, nil) != 0 {
		t.Error("single target must always be index 0")
	}
}

func TestAtomicRoundRobinConcurrentPickersStayInRange(t *testing.T) {
	var b AtomicRoundRobin
	const (
		pickers = 8
		picks   = 1000
		n       = 4
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := make([]int, n)
	for p := 0; p < pickers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int, n)
			for i := 0; i < picks; i++ {
				idx := b.PickIndex(n, nil)
				if idx < 0 || idx >= n {
					t.Errorf("pick %d out of range", idx)
					return
				}
				local[idx]++
			}
			mu.Lock()
			for i, c := range local {
				counts[i] += c
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	// The atomic cursor hands out each index exactly total/n times.
	for i, c := range counts {
		if c != pickers*picks/n {
			t.Errorf("target %d picked %d times, want %d", i, c, pickers*picks/n)
		}
	}
}

func TestLeastLoadedPicksMinimumLowestIndexWins(t *testing.T) {
	loads := []int{5, 2, 2, 9}
	idx := LeastLoaded{}.PickIndex(len(loads), func(i int) int { return loads[i] })
	if idx != 1 {
		t.Fatalf("picked %d, want 1 (lowest index among ties)", idx)
	}
}
