package cluster

import (
	"sync"
	"testing"
)

func TestAtomicRoundRobinCyclesEvenly(t *testing.T) {
	var b AtomicRoundRobin
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		idx := b.PickIndex(4, nil)
		if idx < 0 || idx >= 4 {
			t.Fatalf("pick %d out of range", idx)
		}
		counts[idx]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Errorf("target %d picked %d times, want 100", i, c)
		}
	}
	if b.PickIndex(1, nil) != 0 {
		t.Error("single target must always be index 0")
	}
}

func TestAtomicRoundRobinConcurrentPickersStayInRange(t *testing.T) {
	var b AtomicRoundRobin
	const (
		pickers = 8
		picks   = 1000
		n       = 4
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := make([]int, n)
	for p := 0; p < pickers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int, n)
			for i := 0; i < picks; i++ {
				idx := b.PickIndex(n, nil)
				if idx < 0 || idx >= n {
					t.Errorf("pick %d out of range", idx)
					return
				}
				local[idx]++
			}
			mu.Lock()
			for i, c := range local {
				counts[i] += c
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	// The atomic cursor hands out each index exactly total/n times.
	for i, c := range counts {
		if c != pickers*picks/n {
			t.Errorf("target %d picked %d times, want %d", i, c, pickers*picks/n)
		}
	}
}

func TestLeastLoadedPicksMinimumLowestIndexWins(t *testing.T) {
	loads := []int{5, 2, 2, 9}
	idx := LeastLoaded{}.PickIndex(len(loads), func(i int) int { return loads[i] })
	if idx != 1 {
		t.Fatalf("picked %d, want 1 (lowest index among ties)", idx)
	}
}

func TestPrefixAffinityPicksLongestMatch(t *testing.T) {
	b := &PrefixAffinity{MinMatchTokens: 32}
	loads := []int{9, 1, 1, 1}
	at := func(v []int) func(int) int { return func(i int) int { return v[i] } }

	// Highest match wins even on the most loaded replica.
	if idx := b.PickPrefix(4, at(loads), at([]int{128, 64, 0, 0})); idx != 0 {
		t.Errorf("picked %d, want 0 (longest match)", idx)
	}
	// Match ties break by load, then lowest index.
	if idx := b.PickPrefix(4, at(loads), at([]int{64, 64, 64, 0})); idx != 1 {
		t.Errorf("picked %d, want 1 (least loaded among match ties)", idx)
	}
	// All matches below threshold: fall back to least loaded.
	if idx := b.PickPrefix(4, at(loads), at([]int{16, 31, 0, 0})); idx != 1 {
		t.Errorf("picked %d, want 1 (fallback least loaded)", idx)
	}
	// Chainless requests go straight to the fallback.
	if idx := b.PickIndex(4, at(loads)); idx != 1 {
		t.Errorf("PickIndex = %d, want 1", idx)
	}
}

func TestPrefixAffinityCustomFallback(t *testing.T) {
	b := &PrefixAffinity{Fallback: &AtomicRoundRobin{}}
	zero := func(int) int { return 0 }
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[b.PickPrefix(4, zero, zero)] = true
	}
	if len(seen) != 4 {
		t.Errorf("round-robin fallback hit %d of 4 targets", len(seen))
	}
	// The default threshold applies when MinMatchTokens is zero: a match
	// one block short of it falls back (stays in range), an at-threshold
	// match is chased (lowest index wins the tie).
	if idx := b.PickPrefix(2, zero, func(i int) int { return DefaultMinMatchTokens - 16 }); idx < 0 || idx > 1 {
		t.Errorf("fallback pick %d out of range", idx)
	}
	if idx := b.PickPrefix(2, zero, func(i int) int { return DefaultMinMatchTokens }); idx != 0 {
		t.Errorf("at-threshold match not chased (picked %d)", idx)
	}
}
