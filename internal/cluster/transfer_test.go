package cluster

import (
	"testing"

	"qoserve/internal/kvcache"
	"qoserve/internal/replica"
)

func TestTransferModelSeconds(t *testing.T) {
	m := TransferModel{BytesPerToken: 131072, BandwidthBps: 64e9}
	if !m.Enabled() {
		t.Fatal("configured model reports disabled")
	}
	// 1000 tokens x 128 KiB / 64 GB/s = ~2.05ms.
	got := m.Seconds(1000)
	want := 1000 * 131072.0 / 64e9
	if got != want {
		t.Fatalf("Seconds(1000) = %v, want %v", got, want)
	}
	if m.Seconds(0) != 0 || m.Seconds(-5) != 0 {
		t.Fatal("non-positive token counts must cost nothing")
	}
	if (TransferModel{BytesPerToken: 131072}).Enabled() {
		t.Fatal("zero bandwidth must disable the model")
	}
	if m.minTokens() != DefaultMinMatchTokens {
		t.Fatalf("default import floor %d", m.minTokens())
	}
	if (TransferModel{MinTokens: 7}).minTokens() != 7 {
		t.Fatal("explicit import floor ignored")
	}
}

// TestPickPrefixPredictedImportsRemoteHit arranges an idle replica with no
// cache and a moderately backlogged replica holding the whole prefix.
// Without a transfer model the cached replica wins (queueing behind its
// backlog is still cheaper than recomputing 8K tokens cold); with a fast
// interconnect the idle replica wins because it imports the prefix for
// less than the backlog costs.
func TestPickPrefixPredictedImportsRemoteHit(t *testing.T) {
	snaps := []replica.LoadSnapshot{
		{}, // idle, cold
		{QueuedRequests: 2, PendingPrefillTokens: 6144, ChunkBudgetTokens: 512}, // backlogged, warm
	}
	loads := []int{0, 2}
	match := func(i int) int {
		if i == 1 {
			return 8000
		}
		return 0
	}
	prompt, decode := 8192, 16

	local := &PredictedLatency{Predictor: scoreStub{}}
	if got := local.PickPrefixPredicted(2, loadsAt(loads), snapsAt(snaps), match, prompt, decode); got != 1 {
		t.Fatalf("without transfer: pick %d, want the cache holder 1", got)
	}

	fast := &PredictedLatency{Predictor: scoreStub{}, Transfer: &TransferModel{BytesPerToken: 131072, BandwidthBps: 600e9}}
	if got := fast.PickPrefixPredicted(2, loadsAt(loads), snapsAt(snaps), match, prompt, decode); got != 0 {
		t.Fatalf("with fast transfer: pick %d, want the idle importer 0", got)
	}

	// A glacial interconnect makes the import pointless again.
	slow := &PredictedLatency{Predictor: scoreStub{}, Transfer: &TransferModel{BytesPerToken: 131072, BandwidthBps: 1e3}}
	if got := slow.PickPrefixPredicted(2, loadsAt(loads), snapsAt(snaps), match, prompt, decode); got != 1 {
		t.Fatalf("with slow transfer: pick %d, want the cache holder 1", got)
	}
}

// TestPickPrefixPredictedBelowFloorStaysLocal keeps the remote advantage
// under the import floor so migration must not be priced.
func TestPickPrefixPredictedBelowFloorStaysLocal(t *testing.T) {
	b := &PredictedLatency{Predictor: scoreStub{}, Transfer: &TransferModel{BytesPerToken: 131072, BandwidthBps: 64e9, MinTokens: 256}}
	snaps := []replica.LoadSnapshot{{}, {}}
	// Replica 1 holds 128 more tokens than replica 0 — under the 256 floor,
	// so both score with local credit only and the longer local hit wins.
	match := func(i int) int { return 64 + 128*i }
	if got := b.PickPrefixPredicted(2, loadsAt([]int{0, 0}), snapsAt(snaps), match, 4096, 8); got != 1 {
		t.Fatalf("pick %d, want 1 (larger local hit)", got)
	}
}

// TestPickPrefixPredictedPredictorlessFallsBack checks the nil-predictor
// degradation: prefix affinity over the same match probe.
func TestPickPrefixPredictedPredictorlessFallsBack(t *testing.T) {
	b := &PredictedLatency{}
	snaps := []replica.LoadSnapshot{{}, {}, {}}
	match := func(i int) int {
		if i == 2 {
			return 512
		}
		return 0
	}
	if got := b.PickPrefixPredicted(3, loadsAt([]int{0, 0, 9}), snapsAt(snaps), match, 1024, 8); got != 2 {
		t.Fatalf("predictorless pick %d, want affinity holder 2", got)
	}
	// No match anywhere: least-loaded fallback.
	none := func(int) int { return 0 }
	if got := b.PickPrefixPredicted(3, loadsAt([]int{5, 1, 9}), snapsAt(snaps), none, 1024, 8); got != 1 {
		t.Fatalf("predictorless chainless pick %d, want least-loaded 1", got)
	}
}

// TestPrefixPickSteadyStateAllocFree is the tentpole's zero-alloc guard:
// with global-index match probes, both the affinity pick and the
// transfer-aware predicted pick run without allocating or taking any
// replica lock.
func TestPrefixPickSteadyStateAllocFree(t *testing.T) {
	const n = 4
	idx := kvcache.NewGlobalIndex(n)
	chains := make([][]uint64, n)
	for i := 0; i < n; i++ {
		chains[i] = kvcache.SyntheticChain(uint64(i+1), 0, 8+4*i)
		snap, err := kvcache.NewIndexSnapshot(kvcache.DefaultBlockTokens, len(chains[i]), 0, chains[i])
		if err != nil {
			t.Fatal(err)
		}
		idx.Publish(i, snap)
	}
	chain := chains[2]
	loads := []int{3, 1, 2, 4}
	snaps := make([]replica.LoadSnapshot, n)
	for i := range snaps {
		snaps[i] = replica.LoadSnapshot{QueuedRequests: i, PendingPrefillTokens: 2048 * i, ChunkBudgetTokens: 512}
	}
	load := loadsAt(loads)
	snap := snapsAt(snaps)
	match := func(i int) int { return idx.MatchTokens(i, chain) }

	aff := &PrefixAffinity{}
	if got := aff.PickPrefix(n, load, match); got != 2 {
		t.Fatalf("affinity pick %d, want index holder 2", got)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		aff.PickPrefix(n, load, match)
	}); allocs != 0 {
		t.Errorf("PrefixAffinity.PickPrefix allocates %.1f/op at steady state", allocs)
	}

	pred := &PredictedLatency{Predictor: scoreStub{}, Transfer: &TransferModel{BytesPerToken: 131072, BandwidthBps: 64e9}}
	pred.PickPrefixPredicted(n, load, snap, match, 4096, 16)
	if allocs := testing.AllocsPerRun(200, func() {
		pred.PickPrefixPredicted(n, load, snap, match, 4096, 16)
	}); allocs != 0 {
		t.Errorf("PickPrefixPredicted allocates %.1f/op at steady state", allocs)
	}
}
