package cluster

import (
	"sync/atomic"

	"qoserve/internal/replica"
	"qoserve/internal/request"
)

// Balancer routes an arriving request to one replica of a cluster. The
// paper's deployments use round-robin (§4.1.1); least-loaded routing is
// provided as an extension ablation (see the "lb" experiment).
type Balancer interface {
	// Pick returns the index of the replica that should serve r.
	Pick(replicas []*replica.Replica, r *request.Request) int
}

// GatewayBalancer is the index-based routing core shared by the simulated
// Cluster and the live serving gateway (internal/server): it picks one of n
// live targets without materializing a target slice. load reports the
// current number of unfinished requests routed to target i; balancers that
// do not consult load ignore it. Implementations document whether they are
// safe for concurrent pickers.
type GatewayBalancer interface {
	// PickIndex returns a target in [0, n). n is always >= 1.
	PickIndex(n int, load func(int) int) int
}

// RoundRobin cycles through replicas in order, the paper's default.
type RoundRobin struct {
	next int
}

// Pick returns successive indices modulo the cluster size. The slice may
// shrink between calls (health-aware routing passes only the live
// replicas), so the cursor is clamped before use rather than trusted from
// the previous call.
func (b *RoundRobin) Pick(replicas []*replica.Replica, _ *request.Request) int {
	if b.next >= len(replicas) {
		b.next = 0
	}
	i := b.next
	b.next = (b.next + 1) % len(replicas)
	return i
}

// AtomicRoundRobin is a lock-free round-robin cursor, safe for concurrent
// pickers. The live gateway uses it so parallel submitters never serialize
// on routing; the modulo tolerates a shrinking target count the same way
// RoundRobin's clamp does.
type AtomicRoundRobin struct {
	cursor atomic.Uint64
}

// PickIndex returns successive indices modulo n.
func (b *AtomicRoundRobin) PickIndex(n int, _ func(int) int) int {
	if n <= 1 {
		return 0
	}
	return int((b.cursor.Add(1) - 1) % uint64(n))
}

// LeastLoaded picks the target with the fewest unfinished requests, a
// join-shortest-queue flavour that reacts to skew round-robin cannot see
// (e.g. one replica stuck with several huge prompts). Lowest index wins
// ties, keeping simulated runs deterministic. Stateless, so safe for
// concurrent pickers as long as the load probe is.
type LeastLoaded struct{}

// PickIndex scans all n loads and returns the minimum.
//
//qoserve:hotpath
func (LeastLoaded) PickIndex(n int, load func(int) int) int {
	best, bestLoad := 0, int(^uint(0)>>1)
	for i := 0; i < n; i++ {
		if l := load(i); l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// LeastPending routes to the replica whose scheduler currently holds the
// fewest unfinished requests; the simulation-side adapter over LeastLoaded.
type LeastPending struct{}

// Pick returns the index of the least-loaded replica (lowest index wins
// ties, keeping the simulation deterministic).
func (LeastPending) Pick(replicas []*replica.Replica, _ *request.Request) int {
	return LeastLoaded{}.PickIndex(len(replicas), func(i int) int {
		return replicas[i].Scheduler().Pending()
	})
}

// PrefixRouter is the prefix-aware extension of GatewayBalancer: match
// reports how many prompt tokens of the arriving request's prefix chain are
// cached on target i. Gateways probe each replica's KV manager for the
// match score; requests without a chain fall back to plain PickIndex.
type PrefixRouter interface {
	GatewayBalancer
	// PickPrefix returns a target in [0, n) for a request whose longest
	// cached prefix on target i is match(i) tokens.
	PickPrefix(n int, load func(int) int, match func(int) int) int
}

// PrefixAffinity routes each request to the replica holding the longest
// cached prefix of its prompt — llm-d's "precise prefix-cache aware
// routing" — so multi-turn sessions keep landing where their context is
// already resident. When no replica's match reaches MinMatchTokens the
// expected prefill saving cannot outweigh load skew, so the request falls
// back to the Fallback balancer (LeastLoaded if nil). Highest match wins;
// load breaks match ties, then lowest index, keeping simulated runs
// deterministic. Stateless apart from the fallback, so safe for concurrent
// pickers as long as the probes and the fallback are.
type PrefixAffinity struct {
	// MinMatchTokens is the smallest cached-prefix match worth chasing;
	// zero means DefaultMinMatchTokens.
	MinMatchTokens int
	// Fallback routes requests below the threshold (and chainless ones).
	// Nil means LeastLoaded.
	Fallback GatewayBalancer
}

// DefaultMinMatchTokens is the default affinity threshold: four blocks of
// cached prefix, roughly the point where skipped prefill outweighs the
// risk of piling sessions onto one replica.
const DefaultMinMatchTokens = 4 * 16

// PickIndex routes a chainless request via the fallback balancer.
//
//qoserve:hotpath
func (b *PrefixAffinity) PickIndex(n int, load func(int) int) int {
	if b.Fallback != nil {
		return b.Fallback.PickIndex(n, load)
	}
	return LeastLoaded{}.PickIndex(n, load)
}

// PickPrefix returns the target with the longest cached prefix, or the
// fallback pick when every match is below the threshold. Alloc-free and
// lock-free: with a global-index match probe the whole pick is reads over
// published snapshots (see TestPrefixPickSteadyStateAllocFree).
//
//qoserve:hotpath
func (b *PrefixAffinity) PickPrefix(n int, load func(int) int, match func(int) int) int {
	min := b.MinMatchTokens
	if min <= 0 {
		min = DefaultMinMatchTokens
	}
	best, bestMatch, bestLoad := -1, 0, 0
	for i := 0; i < n; i++ {
		m := match(i)
		if m < min || m < bestMatch {
			continue
		}
		l := load(i)
		if best == -1 || m > bestMatch || l < bestLoad {
			best, bestMatch, bestLoad = i, m, l
		}
	}
	if best == -1 {
		return b.PickIndex(n, load)
	}
	return best
}

// PrefixAware is the simulation-side adapter over PrefixAffinity: it probes
// each replica's KV manager directly.
type PrefixAware struct {
	Affinity PrefixAffinity
}

// Pick returns the replica with the longest cached prefix for r, falling
// back below the threshold.
func (b *PrefixAware) Pick(replicas []*replica.Replica, r *request.Request) int {
	load := func(i int) int { return replicas[i].Scheduler().Pending() }
	if len(r.PrefixHashes) == 0 {
		return b.Affinity.PickIndex(len(replicas), load)
	}
	return b.Affinity.PickPrefix(len(replicas), load, func(i int) int {
		return replicas[i].KV().MatchTokens(r.PrefixHashes)
	})
}
