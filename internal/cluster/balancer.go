package cluster

import (
	"qoserve/internal/replica"
	"qoserve/internal/request"
)

// Balancer routes an arriving request to one replica of a cluster. The
// paper's deployments use round-robin (§4.1.1); least-loaded routing is
// provided as an extension ablation (see the "lb" experiment).
type Balancer interface {
	// Pick returns the index of the replica that should serve r.
	Pick(replicas []*replica.Replica, r *request.Request) int
}

// RoundRobin cycles through replicas in order, the paper's default.
type RoundRobin struct {
	next int
}

// Pick returns successive indices modulo the cluster size. The slice may
// shrink between calls (health-aware routing passes only the live
// replicas), so the cursor is clamped before use rather than trusted from
// the previous call.
func (b *RoundRobin) Pick(replicas []*replica.Replica, _ *request.Request) int {
	if b.next >= len(replicas) {
		b.next = 0
	}
	i := b.next
	b.next = (b.next + 1) % len(replicas)
	return i
}

// LeastPending routes to the replica whose scheduler currently holds the
// fewest unfinished requests, a join-shortest-queue flavour that reacts to
// skew round-robin cannot see (e.g. one replica stuck with several huge
// prompts).
type LeastPending struct{}

// Pick returns the index of the least-loaded replica (lowest index wins
// ties, keeping the simulation deterministic).
func (LeastPending) Pick(replicas []*replica.Replica, _ *request.Request) int {
	best, bestLoad := 0, int(^uint(0)>>1)
	for i, rep := range replicas {
		if load := rep.Scheduler().Pending(); load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}
