package cluster

import (
	"reflect"
	"testing"

	"qoserve/internal/fault"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// The chaos harness replays deterministic fault schedules — explicit and
// seeded-random — against a shared cluster and asserts the recovery
// contract: no request is ever silently dropped (every request either
// completes or is permanently failed with a reason), retried requests keep
// their identity, and the whole run is reproducible bit-for-bit.

// chaosRun is one deterministic replay of a fault schedule.
type chaosRun struct {
	trace []*request.Request
	sum   *metrics.Summary
	stats FaultStats
}

// runChaos executes the scenario once on a fresh trace.
func runChaos(t *testing.T, replicas, n int, qps float64, seed int64, s fault.Schedule, rec Recovery) chaosRun {
	t.Helper()
	trace := gen(t, n, qps, seed)
	sum, stats, err := RunFaulty(model.Llama3_8B_A100_TP1(), replicas, sarathiFactory, trace, sim.Forever, s, rec)
	if err != nil {
		t.Fatal(err)
	}
	return chaosRun{trace: trace, sum: sum, stats: stats}
}

// assertNoSilentDrops enforces the recovery contract: every submitted
// request either produced all its tokens or carries a failure reason.
func assertNoSilentDrops(t *testing.T, run chaosRun) {
	t.Helper()
	for _, r := range run.trace {
		done := r.Phase() == request.Done
		switch {
		case done && r.Failed():
			t.Errorf("request %d both completed and failed (%q)", r.ID, r.FailedReason)
		case !done && !r.Failed():
			t.Errorf("request %d silently dropped: not completed, no failure reason "+
				"(prefilled %d/%d, decoded %d/%d, retries %d)",
				r.ID, r.PrefilledTokens, r.PromptTokens, r.DecodedTokens, r.DecodeTokens, r.Retries)
		}
	}
	if got := run.stats.FailedRequests; got != len(failedOf(run.trace)) {
		t.Errorf("FaultStats.FailedRequests = %d, trace has %d failed", got, len(failedOf(run.trace)))
	}
	if run.stats.Parked != 0 {
		t.Errorf("%d requests still parked after drain", run.stats.Parked)
	}
}

func failedOf(trace []*request.Request) []*request.Request {
	var out []*request.Request
	for _, r := range trace {
		if r.Failed() {
			out = append(out, r)
		}
	}
	return out
}

func TestChaosSchedules(t *testing.T) {
	// ~120 requests at 12 QPS span ~10s of arrivals, so faults in the
	// first few seconds hit a cluster with work in flight. All runs are
	// deterministic: the expectations below are exact, not probabilistic.
	cases := []struct {
		name     string
		replicas int
		spec     string
		random   *fault.RandomConfig
		rec      Recovery
		check    func(t *testing.T, run chaosRun)
	}{
		{
			// The acceptance scenario: kill 1 of 4 replicas mid-run, no
			// repair. Orphans must be retried onto the survivors.
			name:     "kill one of four",
			replicas: 4,
			spec:     "crash@3s:1",
			check: func(t *testing.T, run chaosRun) {
				if run.stats.Crashes != 1 || run.stats.Restarts != 0 {
					t.Errorf("crashes/restarts = %d/%d, want 1/0", run.stats.Crashes, run.stats.Restarts)
				}
				if run.stats.Retries == 0 {
					t.Error("crash with work in flight caused no retries")
				}
				if run.stats.FailedRequests != 0 {
					t.Errorf("%d requests failed with 3 healthy replicas", run.stats.FailedRequests)
				}
				if run.sum.CompletionRate(metrics.All) != 1 {
					t.Errorf("completion rate = %v, want 1", run.sum.CompletionRate(metrics.All))
				}
				// The crashed replica's survivors picked up its load.
				reqs, retries := run.sum.RetriedCount(metrics.All)
				if reqs == 0 || retries != int(run.stats.Retries) {
					t.Errorf("summary retries = %d over %d requests, stats say %d", retries, reqs, run.stats.Retries)
				}
			},
		},
		{
			name:     "crash then restart",
			replicas: 4,
			spec:     "crash@2s:0,restart@6s:0,crash@4s:2,restart@8s:2",
			check: func(t *testing.T, run chaosRun) {
				if run.stats.Crashes != 2 || run.stats.Restarts != 2 {
					t.Errorf("crashes/restarts = %d/%d, want 2/2", run.stats.Crashes, run.stats.Restarts)
				}
				if run.stats.Down != 0 {
					t.Errorf("%d replicas still down after restarts", run.stats.Down)
				}
				if run.sum.CompletionRate(metrics.All) != 1 {
					t.Errorf("completion rate = %v, want 1", run.sum.CompletionRate(metrics.All))
				}
			},
		},
		{
			name:     "slow replica degrades but drops nothing",
			replicas: 2,
			spec:     "slow@1s:0x8,slow@6s:0x1",
			check: func(t *testing.T, run chaosRun) {
				if run.stats.Crashes != 0 || run.stats.Retries != 0 {
					t.Errorf("slowdown caused crashes=%d retries=%d", run.stats.Crashes, run.stats.Retries)
				}
				if run.sum.CompletionRate(metrics.All) != 1 {
					t.Errorf("completion rate = %v, want 1", run.sum.CompletionRate(metrics.All))
				}
			},
		},
		{
			// Whole-cluster outage: both replicas die, one comes back.
			// Requests arriving during the outage park and are flushed on
			// the restart; nothing is dropped.
			name:     "total outage parks then flushes",
			replicas: 2,
			spec:     "crash@2s:0,crash@2s:1,restart@5s:0",
			check: func(t *testing.T, run chaosRun) {
				if run.stats.Down != 1 {
					t.Errorf("down = %d, want 1 (replica 1 never restarts)", run.stats.Down)
				}
				if run.stats.FailedRequests != 0 {
					t.Errorf("%d requests failed despite the restart beating the park timeout", run.stats.FailedRequests)
				}
				if run.sum.CompletionRate(metrics.All) != 1 {
					t.Errorf("completion rate = %v, want 1", run.sum.CompletionRate(metrics.All))
				}
			},
		},
		{
			// Permanent total outage with a short park timeout: every
			// request still in the system must be failed with a reason,
			// not stranded.
			name:     "permanent outage fails loudly",
			replicas: 2,
			spec:     "crash@1s:0,crash@1s:1",
			rec:      Recovery{ParkTimeout: 2 * sim.Second},
			check: func(t *testing.T, run chaosRun) {
				if run.stats.FailedRequests == 0 {
					t.Error("permanent outage failed no requests")
				}
				for _, r := range failedOf(run.trace) {
					if r.FailedReason == "" {
						t.Errorf("request %d failed without a reason", r.ID)
					}
					if !r.ViolatedSLO(run.sum.End) {
						t.Errorf("failed request %d not counted as violated", r.ID)
					}
				}
			},
		},
		{
			// Tight retry budget under repeated crashes of the same
			// replica: some requests exhaust their retries and must be
			// failed, the rest complete.
			name:     "retry budget exhausts loudly",
			replicas: 1,
			spec:     "crash@1s:0,restart@1100ms:0,crash@1200ms:0,restart@1300ms:0,crash@1400ms:0,restart@1500ms:0,crash@1600ms:0,restart@1700ms:0",
			rec:      Recovery{MaxRetries: 2, Backoff: 10 * sim.Millisecond},
			check: func(t *testing.T, run chaosRun) {
				if run.stats.FailedRequests == 0 {
					t.Error("four crashes against MaxRetries=2 failed no requests")
				}
				for _, r := range failedOf(run.trace) {
					if r.Retries < 2 {
						t.Errorf("request %d failed after only %d retries (budget 2)", r.ID, r.Retries)
					}
				}
			},
		},
		{
			name:     "seeded random churn",
			replicas: 4,
			random:   &fault.RandomConfig{Seed: 42, Replicas: 4, Horizon: 15 * sim.Second, MTBF: 4 * sim.Second, MTTR: sim.Second},
			check: func(t *testing.T, run chaosRun) {
				if run.stats.Crashes == 0 {
					t.Error("15s horizon at 4s MTBF produced no crashes")
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			schedule, err := fault.ParseSchedule(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if tc.random != nil {
				schedule, err = fault.Random(*tc.random)
				if err != nil {
					t.Fatal(err)
				}
			}

			run := runChaos(t, tc.replicas, 120, 12, 21, schedule, tc.rec)
			assertNoSilentDrops(t, run)
			if tc.check != nil {
				tc.check(t, run)
			}

			// Determinism: the identical scenario on a fresh trace must
			// reproduce every outcome and counter exactly.
			again := runChaos(t, tc.replicas, 120, 12, 21, schedule, tc.rec)
			if !reflect.DeepEqual(run.stats, again.stats) {
				t.Errorf("fault stats differ across runs:\n  %+v\n  %+v", run.stats, again.stats)
			}
			if !reflect.DeepEqual(run.sum.Outcomes, again.sum.Outcomes) {
				t.Error("per-request outcomes differ across identical runs")
			}
		})
	}
}

// TestChaosRetryPreservesIdentity checks the recovery semantics the design
// doc promises: a retried request keeps its arrival time (so its deadline
// and EDF/hybrid priority are unchanged) but loses all token progress.
func TestChaosRetryPreservesIdentity(t *testing.T) {
	trace := gen(t, 120, 12, 21)
	arrivals := make(map[uint64]sim.Time, len(trace))
	for _, r := range trace {
		arrivals[r.ID] = r.Arrival
	}
	schedule, err := fault.ParseSchedule("crash@3s:1")
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := RunFaulty(model.Llama3_8B_A100_TP1(), 4, sarathiFactory, trace, sim.Forever, schedule, Recovery{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries == 0 {
		t.Fatal("scenario produced no retries")
	}
	if stats.LostTokens == 0 {
		t.Error("retries discarded no progress — crash hit only idle requests?")
	}
	retried := 0
	for _, r := range trace {
		if r.Retries == 0 {
			continue
		}
		retried++
		if r.Arrival != arrivals[r.ID] {
			t.Errorf("request %d arrival changed across retry: %v != %v", r.ID, r.Arrival, arrivals[r.ID])
		}
		if r.Phase() == request.Done && r.DecodedTokens != r.DecodeTokens {
			t.Errorf("request %d done with %d/%d tokens", r.ID, r.DecodedTokens, r.DecodeTokens)
		}
	}
	if retried == 0 {
		t.Error("stats counted retries but no request carries one")
	}
}

// TestChaosHealthAccounting checks the Health snapshots: downtime
// accumulates over closed outages and liveness reflects the schedule.
func TestChaosHealthAccounting(t *testing.T) {
	engine := sim.NewEngine()
	c, err := New(engine, model.Llama3_8B_A100_TP1(), 3, sarathiFactory)
	if err != nil {
		t.Fatal(err)
	}
	schedule, err := fault.ParseSchedule("crash@2s:1,restart@5s:1,crash@8s:1")
	if err != nil {
		t.Fatal(err)
	}
	if err := fault.Arm(engine, c, schedule); err != nil {
		t.Fatal(err)
	}
	if err := c.StartProbes(sim.Second, 10*sim.Second); err != nil {
		t.Fatal(err)
	}
	engine.Run()

	h := c.Health()
	if h[0].Crashes != 0 || !h[0].Up {
		t.Errorf("untouched replica 0: %+v", h[0])
	}
	if h[1].Up {
		t.Error("replica 1 up after final crash")
	}
	if h[1].Crashes != 2 || h[1].Restarts != 1 {
		t.Errorf("replica 1 crashes/restarts = %d/%d, want 2/1", h[1].Crashes, h[1].Restarts)
	}
	if h[1].Downtime != 3*sim.Second {
		t.Errorf("replica 1 downtime = %v, want 3s (2s..5s)", h[1].Downtime)
	}
	if h[2].Probes != 10 || h[2].LastProbe != 10*sim.Second {
		t.Errorf("replica 2 probes = %d at %v, want 10 at 10s", h[2].Probes, h[2].LastProbe)
	}
	if c.StartProbes(0, sim.Second) == nil {
		t.Error("non-positive probe interval accepted")
	}
}

// TestRoundRobinSurvivesShrinkingCluster covers the balancer against a
// replica set that shrinks between picks, as happens when health-aware
// routing passes only the live subset: the cursor from the larger set must
// not index past the smaller one.
func TestRoundRobinSurvivesShrinkingCluster(t *testing.T) {
	engine := sim.NewEngine()
	c, err := New(engine, model.Llama3_8B_A100_TP1(), 3, sarathiFactory)
	if err != nil {
		t.Fatal(err)
	}
	rr := &RoundRobin{}
	full := c.Replicas()
	for i := 0; i < 3; i++ {
		rr.Pick(full, nil) // cursor now wraps to 0 via 2
	}
	rr.Pick(full, nil) // cursor at 1
	rr.Pick(full, nil) // cursor at 2
	shrunk := full[:1]
	if got := rr.Pick(shrunk, nil); got != 0 {
		t.Fatalf("pick on shrunk set = %d, want 0", got)
	}
	// And across many alternating sizes every pick stays in range.
	sets := [][]int{{3}, {1}, {2}, {1}, {3}, {2}}
	for _, s := range sets {
		reps := full[:s[0]]
		if got := rr.Pick(reps, nil); got < 0 || got >= len(reps) {
			t.Fatalf("pick = %d out of range for %d replicas", got, len(reps))
		}
	}
}

// TestClusterRoutesAroundDownReplica checks Submit never targets a down
// replica and the load lands on the survivors.
func TestClusterRoutesAroundDownReplica(t *testing.T) {
	engine := sim.NewEngine()
	c, err := New(engine, model.Llama3_8B_A100_TP1(), 3, sarathiFactory)
	if err != nil {
		t.Fatal(err)
	}
	c.Crash(1)
	trace := gen(t, 30, 10, 5)
	scheduleArrivals(engine, c, trace)
	engine.Run()
	reps := c.Replicas()
	if got := len(reps[1].Served()); got != 0 {
		t.Errorf("down replica served %d requests", got)
	}
	if got := len(reps[0].Served()) + len(reps[2].Served()); got != 30 {
		t.Errorf("survivors served %d, want 30", got)
	}
}
