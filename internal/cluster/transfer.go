package cluster

import (
	"qoserve/internal/predictor"
	"qoserve/internal/replica"
	"qoserve/internal/sim"
)

// TransferModel prices cross-replica KV migration for prefix-aware
// routing: moving a cached prefix of hitTokens costs
// BytesPerToken x hitTokens / BandwidthBps seconds of interconnect time.
// The balancer charges this against the prefill time the migration saves,
// so slow links naturally fall back to recompute.
type TransferModel struct {
	// BytesPerToken is the KV footprint of one token for the served model
	// (model.Config.KVBytesPerToken()).
	BytesPerToken float64
	// BandwidthBps is the replica-to-replica interconnect in bytes/s.
	// Zero or negative disables migration scoring.
	BandwidthBps float64
	// MinTokens is the smallest import worth the coordination overhead;
	// zero means DefaultMinMatchTokens, matching the affinity threshold.
	MinTokens int
}

// Enabled reports whether the model can price a migration at all.
//
//qoserve:hotpath
func (t TransferModel) Enabled() bool { return t.BandwidthBps > 0 && t.BytesPerToken > 0 }

// minTokens is the effective import floor.
//
//qoserve:hotpath
func (t TransferModel) minTokens() int {
	if t.MinTokens > 0 {
		return t.MinTokens
	}
	return DefaultMinMatchTokens
}

// Seconds prices moving tokens of cached KV across the interconnect.
//
//qoserve:hotpath
func (t TransferModel) Seconds(tokens int) float64 {
	if tokens <= 0 || t.BandwidthBps <= 0 {
		return 0
	}
	return float64(tokens) * t.BytesPerToken / t.BandwidthBps
}

// Time is Seconds as simulated time.
//
//qoserve:hotpath
func (t TransferModel) Time(tokens int) sim.Time {
	return sim.FromSeconds(t.Seconds(tokens))
}

// PrefixSnapshotBalancer combines prefix awareness with predicted-latency
// scoring: match reports target i's cached coverage of the request's chain
// (a lock-free global-index probe on the live gateway), and the balancer
// weighs cached-anywhere prefixes — importable via KV transfer — against
// every target's queue state.
type PrefixSnapshotBalancer interface {
	SnapshotBalancer
	// PickPrefixPredicted returns a target in [0, n) for a request of the
	// given shape whose cached prefix on target i is match(i) tokens.
	PickPrefixPredicted(n int, load func(int) int, snap func(int) replica.LoadSnapshot, match func(int) int, promptTokens, decodeTokens int) int
}

// PickPrefixPredicted scores each target twice: serving the request with
// only its locally cached prefix, and (when a Transfer model is
// configured) importing the cluster-best prefix from whichever replica
// holds it, paying modeled interconnect time instead of recompute. Each
// target is priced at the cheaper of the two, so the pick naturally lands
// where cached context plus queue state — not either alone — minimizes
// predicted completion. Ties break on load, then lowest index. A nil
// Predictor falls back to plain prefix affinity over the same match probe
// (predicted scoring needs the forest, but cached-prefix routing does
// not).
func (b *PredictedLatency) PickPrefixPredicted(n int, load func(int) int, snap func(int) replica.LoadSnapshot, match func(int) int, promptTokens, decodeTokens int) int {
	if b.Predictor == nil {
		aff := PrefixAffinity{Fallback: b.Fallback}
		return aff.PickPrefix(n, load, match)
	}
	return b.pickScoredPrefix(n, load, snap, match, promptTokens, decodeTokens)
}

// pickScoredPrefix is the scoring loop, split out (like pickScored) so the
// hot path is exactly the predictor-backed case.
//
//qoserve:hotpath
func (b *PredictedLatency) pickScoredPrefix(n int, load func(int) int, snap func(int) replica.LoadSnapshot, match func(int) int, promptTokens, decodeTokens int) int {
	bestHit := 0
	for i := 0; i < n; i++ {
		if m := match(i); m > bestHit {
			bestHit = m
		}
	}
	canImport := b.Transfer != nil && b.Transfer.Enabled()
	best, bestLoad := 0, 0
	var bestScore sim.Time
	for i := 0; i < n; i++ {
		s := snap(i)
		local := match(i)
		score := predictor.EstimateCompletionPrefix(b.Predictor,
			s.PendingPrefillTokens, s.ActiveDecodes, s.SumDecodeCtx, s.MaxDecodeCtx,
			s.ChunkBudgetTokens, promptTokens, decodeTokens, local, 0)
		if canImport && bestHit-local >= b.Transfer.minTokens() {
			imported := predictor.EstimateCompletionPrefix(b.Predictor,
				s.PendingPrefillTokens, s.ActiveDecodes, s.SumDecodeCtx, s.MaxDecodeCtx,
				s.ChunkBudgetTokens, promptTokens, decodeTokens, bestHit,
				b.Transfer.Time(bestHit-local))
			if imported < score {
				score = imported
			}
		}
		switch {
		case i == 0:
			bestScore, bestLoad = score, load(i)
		case score < bestScore:
			best, bestScore, bestLoad = i, score, load(i)
		case score == bestScore:
			if l := load(i); l < bestLoad {
				best, bestLoad = i, l
			}
		}
	}
	return best
}
