package cluster

import (
	"fmt"

	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// Health is the cluster's view of one replica: liveness, transition
// history, degradation, and probe bookkeeping.
type Health struct {
	// Up reports whether the replica is in service.
	Up bool
	// Since is the virtual time of the last up/down transition.
	Since sim.Time
	// Crashes and Restarts count lifecycle transitions.
	Crashes  uint64
	Restarts uint64
	// SlowFactor is the current execution-time multiplier (1 nominal).
	SlowFactor float64
	// Downtime accumulates virtual time spent down (closed intervals
	// only; an ongoing outage is not included until it ends).
	Downtime sim.Time
	// LastProbe is the virtual time of the most recent periodic probe;
	// Probes counts them.
	LastProbe sim.Time
	Probes    uint64
}

// Health returns a snapshot of per-replica health state, indexed like
// Replicas().
func (c *Cluster) Health() []Health {
	out := make([]Health, len(c.health))
	copy(out, c.health)
	return out
}

// StartProbes schedules a periodic health probe every interval up to and
// including the until bound. Probes observe each replica's liveness into
// the Health records — the state a real control plane would collect from
// heartbeats — without affecting routing, which reacts to failures
// immediately (the simulator has no detection latency to model yet). An
// explicit bound keeps the event queue finite so unbounded runs still
// drain.
func (c *Cluster) StartProbes(interval, until sim.Time) error {
	if interval <= 0 {
		return fmt.Errorf("cluster: probe interval %v", interval)
	}
	for t := c.engine.Now() + interval; t <= until; t += interval {
		c.engine.At(t, sim.EventFunc(func(_ *sim.Engine, now sim.Time) {
			for i := range c.health {
				c.health[i].LastProbe = now
				c.health[i].Probes++
			}
		}))
	}
	return nil
}

// Recovery configures how the cluster re-dispatches work orphaned by a
// replica crash.
type Recovery struct {
	// MaxRetries bounds how many times one request may be re-enqueued
	// before the cluster permanently fails it. Default 3.
	MaxRetries int
	// Backoff is the delay before the first re-enqueue; it doubles per
	// retry (exponential backoff). Default 50 ms.
	Backoff sim.Time
	// ParkTimeout bounds how long a request may wait parked for any
	// healthy replica before being failed. Default 5 minutes.
	ParkTimeout sim.Time
}

// DefaultRecovery returns the default recovery policy.
func DefaultRecovery() Recovery {
	return Recovery{MaxRetries: 3, Backoff: 50 * sim.Millisecond, ParkTimeout: 5 * sim.Minute}
}

// withDefaults fills zero fields.
func (r Recovery) withDefaults() Recovery {
	d := DefaultRecovery()
	if r.MaxRetries <= 0 {
		r.MaxRetries = d.MaxRetries
	}
	if r.Backoff <= 0 {
		r.Backoff = d.Backoff
	}
	if r.ParkTimeout <= 0 {
		r.ParkTimeout = d.ParkTimeout
	}
	return r
}

// FailedRequest records one request the cluster permanently gave up on,
// with the reason — the contract is that no request ever disappears
// silently: it completes, or it appears here (and is counted an SLO
// violation in metrics).
type FailedRequest struct {
	Req    *request.Request
	At     sim.Time
	Reason string
}

// FaultStats aggregates the cluster's failure and recovery counters.
type FaultStats struct {
	// Crashes and Restarts count replica lifecycle transitions.
	Crashes  uint64
	Restarts uint64
	// Retries counts request re-enqueues after crashes.
	Retries uint64
	// LostTokens is the total context tokens of progress discarded by
	// crashes (prefilled prompt plus generated output at crash time).
	LostTokens uint64
	// FailedRequests counts requests permanently failed with a reason.
	FailedRequests int
	// Parked is the number of requests currently waiting for any healthy
	// replica (nonzero only while the whole cluster is down).
	Parked int
	// Down is the number of replicas currently out of service.
	Down int
}

// FaultStats snapshots the cluster's failure/recovery counters.
func (c *Cluster) FaultStats() FaultStats {
	s := FaultStats{
		Retries:        c.retries,
		LostTokens:     c.lostTokens,
		FailedRequests: len(c.failed),
		Parked:         len(c.parked),
	}
	for _, h := range c.health {
		s.Crashes += h.Crashes
		s.Restarts += h.Restarts
		if !h.Up {
			s.Down++
		}
	}
	return s
}

// Failed returns every permanently failed request with its reason.
func (c *Cluster) Failed() []FailedRequest {
	out := make([]FailedRequest, len(c.failed))
	copy(out, c.failed)
	return out
}
