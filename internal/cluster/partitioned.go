package cluster

import (
	"fmt"
	"sort"

	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// PartitionedPlan is the PolyServe-style deployment of §4.5.2: requests are
// binned by QoS class into independent deployments, each running a chunked
// scheduler whose fixed chunk is fitted to that class's own TBT. Unlike the
// paper's silo baseline (which exists to be beaten on efficiency), the
// partitioned plan represents a considered multi-SLO design — its weakness
// is structural: no deployment can use another's slack.
type PartitionedPlan struct {
	// Replicas per class name.
	Replicas map[string]int
	// ChunkFor returns the fixed chunk for a class's deployment (e.g.
	// from predictor.ChunkBudget at the class's TBT).
	ChunkFor func(class string) int
	// Policy orders prefills inside each deployment (PolyServe uses
	// deadline-aware ordering; default EDF).
	Policy sched.Policy
}

// TotalReplicas sums the plan's replica counts.
func (p PartitionedPlan) TotalReplicas() int {
	n := 0
	for _, v := range p.Replicas {
		n += v
	}
	return n
}

// RunPartitioned simulates the partitioned deployment over the trace.
func RunPartitioned(cfg model.Config, plan PartitionedPlan, trace []*request.Request, horizon sim.Time) (*metrics.Summary, error) {
	if plan.ChunkFor == nil {
		return nil, fmt.Errorf("cluster: partitioned plan needs ChunkFor")
	}
	silo := SiloPlan{
		Replicas: plan.Replicas,
		Factory: func(class string) sched.Scheduler {
			chunk := plan.ChunkFor(class)
			if chunk <= 0 {
				chunk = sched.DefaultChunk
			}
			return sched.NewSarathi(plan.Policy, chunk)
		},
	}
	return RunSiloed(cfg, silo, trace, horizon)
}

// SizePartition computes, for each class present in the trace, the replica
// count needed to serve that class's share of totalQPS at the measured
// per-replica goodput — the arithmetic behind Figure 15b's GPU bars.
// goodput maps class name to per-replica QPS.
func SizePartition(trace []*request.Request, totalQPS float64, goodput map[string]float64) (map[string]int, error) {
	shares := map[string]int{}
	for _, r := range trace {
		shares[r.Class.Name]++
	}
	if len(trace) == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	out := make(map[string]int, len(shares))
	// Deterministic iteration for reproducible error messages.
	names := make([]string, 0, len(shares))
	for name := range shares {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := goodput[name]
		if !ok || g <= 0 {
			return nil, fmt.Errorf("cluster: no goodput for class %q", name)
		}
		classQPS := totalQPS * float64(shares[name]) / float64(len(trace))
		n := int(classQPS / g)
		if float64(n)*g < classQPS {
			n++
		}
		if n < 1 {
			n = 1
		}
		out[name] = n
	}
	return out, nil
}
