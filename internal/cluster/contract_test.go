package cluster

import (
	"fmt"
	"sync"
	"testing"

	"qoserve/internal/replica"
)

// The gateway balancer contract, enforced against every implementation:
//
//  1. In-range: every pick lands in [0, n) for all n >= 1, whatever the
//     load/match/score functions report.
//  2. No panic at n=1: a single target is always index 0.
//  3. Determinism: two fresh instances fed an identical call sequence
//     under identical load snapshots produce identical picks.
//  4. Degenerate inputs: when the routing signal is useless (all matches
//     zero, no predictor, flat loads) the balancer falls back instead of
//     misrouting or panicking.
//  5. Concurrent pickers stay in range (run under -race via `make race`).
//
// New GatewayBalancer implementations must be added to contractImpls; the
// suite exercises every optional capability (PrefixRouter,
// SnapshotBalancer) the implementation advertises.

// contractImpl is one balancer under contract test. fresh returns a new
// instance so stateful balancers (the round-robin cursor) start identical.
type contractImpl struct {
	name  string
	fresh func() GatewayBalancer
}

func contractImpls() []contractImpl {
	return []contractImpl{
		{"atomic-round-robin", func() GatewayBalancer { return &AtomicRoundRobin{} }},
		{"least-loaded", func() GatewayBalancer { return LeastLoaded{} }},
		{"prefix-affinity", func() GatewayBalancer { return &PrefixAffinity{MinMatchTokens: 32} }},
		{"prefix-affinity-rr-fallback", func() GatewayBalancer { return &PrefixAffinity{Fallback: &AtomicRoundRobin{}} }},
		{"predicted-latency", func() GatewayBalancer { return &PredictedLatency{Predictor: scoreStub{}} }},
		{"predicted-latency-no-predictor", func() GatewayBalancer { return &PredictedLatency{} }},
		{"predicted-latency-transfer", func() GatewayBalancer {
			return &PredictedLatency{Predictor: scoreStub{}, Transfer: &TransferModel{BytesPerToken: 131072, BandwidthBps: 64e9}}
		}},
		{"predicted-latency-transfer-no-predictor", func() GatewayBalancer {
			return &PredictedLatency{Transfer: &TransferModel{BytesPerToken: 131072, BandwidthBps: 64e9}}
		}},
	}
}

// contractSnap derives a deterministic, Validate-consistent snapshot from
// a seed, covering idle, prefill-heavy, and decode-heavy states.
func contractSnap(seed int) replica.LoadSnapshot {
	switch seed % 4 {
	case 0:
		return replica.LoadSnapshot{}
	case 1:
		return replica.LoadSnapshot{
			QueuedRequests:       1 + seed%3,
			PendingPrefillTokens: 512 * (1 + seed%7),
			ChunkBudgetTokens:    256 << (seed % 3),
		}
	case 2:
		n := 1 + seed%5
		max := 256 * (1 + seed%4)
		return replica.LoadSnapshot{
			ActiveDecodes: n,
			SumDecodeCtx:  n * max,
			MaxDecodeCtx:  max,
		}
	default:
		return replica.LoadSnapshot{
			QueuedRequests:       2,
			PendingPrefillTokens: 4096,
			ActiveDecodes:        3,
			SumDecodeCtx:         2100,
			MaxDecodeCtx:         900,
			ChunkBudgetTokens:    512,
		}
	}
}

// pickSequence drives one balancer through `rounds` picks over every
// capability it implements, asserting range on each, and returns the pick
// trail for determinism comparison. The load/match/snapshot inputs are a
// pure function of (n, round, i), so two invocations see identical state.
func pickSequence(t *testing.T, b GatewayBalancer, n, rounds int) []int {
	t.Helper()
	var trail []int
	record := func(kind string, idx int) {
		if idx < 0 || idx >= n {
			t.Fatalf("%s pick %d out of range [0,%d)", kind, idx, n)
		}
		trail = append(trail, idx)
	}
	for round := 0; round < rounds; round++ {
		load := func(i int) int { return (i*7 + round*3) % 11 }
		record("index", b.PickIndex(n, load))
		if pr, ok := b.(PrefixRouter); ok {
			match := func(i int) int { return ((i + round) % 4) * 48 }
			record("prefix", pr.PickPrefix(n, load, match))
		}
		if sb, ok := b.(SnapshotBalancer); ok {
			snap := func(i int) replica.LoadSnapshot { return contractSnap(i + round) }
			record("predicted", sb.PickPredicted(n, load, snap, 256+(round%8)*512, 1+round%64))
			if pb, ok := b.(PrefixSnapshotBalancer); ok {
				match := func(i int) int { return ((i + round) % 4) * 96 }
				record("prefix-predicted", pb.PickPrefixPredicted(n, load, snap, match, 256+(round%8)*512, 1+round%64))
			}
		}
	}
	return trail
}

func TestBalancerContractInRangeForAllN(t *testing.T) {
	for _, impl := range contractImpls() {
		t.Run(impl.name, func(t *testing.T) {
			for n := 1; n <= 8; n++ {
				pickSequence(t, impl.fresh(), n, 50)
			}
		})
	}
}

func TestBalancerContractSingleTargetIsAlwaysZero(t *testing.T) {
	// Adversarial probes: huge loads, zero matches, empty snapshots. With
	// one target every pick must be 0 and nothing may panic.
	hugeLoad := func(int) int { return 1 << 30 }
	for _, impl := range contractImpls() {
		t.Run(impl.name, func(t *testing.T) {
			b := impl.fresh()
			for round := 0; round < 10; round++ {
				if idx := b.PickIndex(1, hugeLoad); idx != 0 {
					t.Fatalf("PickIndex(1) = %d, want 0", idx)
				}
				if pr, ok := b.(PrefixRouter); ok {
					if idx := pr.PickPrefix(1, hugeLoad, func(int) int { return 0 }); idx != 0 {
						t.Fatalf("PickPrefix(1) = %d, want 0", idx)
					}
				}
				if sb, ok := b.(SnapshotBalancer); ok {
					snap := func(int) replica.LoadSnapshot { return replica.LoadSnapshot{} }
					if idx := sb.PickPredicted(1, hugeLoad, snap, 1, 1); idx != 0 {
						t.Fatalf("PickPredicted(1) = %d, want 0", idx)
					}
					if pb, ok := b.(PrefixSnapshotBalancer); ok {
						if idx := pb.PickPrefixPredicted(1, hugeLoad, snap, func(int) int { return 0 }, 1, 1); idx != 0 {
							t.Fatalf("PickPrefixPredicted(1) = %d, want 0", idx)
						}
					}
				}
			}
		})
	}
}

func TestBalancerContractDeterministicUnderIdenticalSnapshots(t *testing.T) {
	for _, impl := range contractImpls() {
		t.Run(impl.name, func(t *testing.T) {
			for n := 1; n <= 5; n++ {
				a := pickSequence(t, impl.fresh(), n, 40)
				b := pickSequence(t, impl.fresh(), n, 40)
				if fmt.Sprint(a) != fmt.Sprint(b) {
					t.Fatalf("n=%d: identical call sequences diverged:\n  %v\n  %v", n, a, b)
				}
			}
		})
	}
}

func TestBalancerContractDegenerateSignalsFallBack(t *testing.T) {
	loads := []int{6, 1, 3, 2}
	load := func(i int) int { return loads[i] }

	// A prefix router whose every match is below threshold must route like
	// its fallback, not chase a useless affinity.
	pa := &PrefixAffinity{MinMatchTokens: 64}
	if idx := pa.PickPrefix(4, load, func(int) int { return 63 }); idx != 1 {
		t.Fatalf("below-threshold matches picked %d, want 1 (least loaded)", idx)
	}
	// Matches of zero (nothing cached anywhere) likewise.
	if idx := pa.PickPrefix(4, load, func(int) int { return 0 }); idx != 1 {
		t.Fatalf("zero matches picked %d, want 1 (least loaded)", idx)
	}

	// A predicted balancer with no predictor must route like its fallback.
	pl := &PredictedLatency{}
	snap := func(int) replica.LoadSnapshot { return replica.LoadSnapshot{} }
	if idx := pl.PickPredicted(4, load, snap, 1024, 8); idx != 1 {
		t.Fatalf("predictorless pick %d, want 1 (least loaded)", idx)
	}
	// A constant predictor (every replica scores identically) degrades to
	// load, then index — never out of range, never stuck.
	flat := &PredictedLatency{Predictor: scoreStub{}}
	if idx := flat.PickPredicted(4, load, snap, 1024, 8); idx != 1 {
		t.Fatalf("flat-score pick %d, want 1 (load tie-break)", idx)
	}

	// Flat loads: every balancer must still return something in range.
	for _, impl := range contractImpls() {
		b := impl.fresh()
		if idx := b.PickIndex(4, func(int) int { return 5 }); idx < 0 || idx >= 4 {
			t.Fatalf("%s: flat-load pick %d out of range", impl.name, idx)
		}
	}
}

// TestBalancerContractShrinkingTargets reuses one instance while the
// target count shrinks pick over pick — the health-aware gateway passes
// only live replicas, so a balancer must tolerate n collapsing under it.
func TestBalancerContractShrinkingTargets(t *testing.T) {
	for _, impl := range contractImpls() {
		t.Run(impl.name, func(t *testing.T) {
			b := impl.fresh()
			for n := 8; n >= 1; n-- {
				pickSequence(t, b, n, 10)
			}
		})
	}
}

func TestBalancerContractConcurrentPickersStayInRange(t *testing.T) {
	const (
		pickers = 8
		rounds  = 300
		n       = 4
	)
	for _, impl := range contractImpls() {
		t.Run(impl.name, func(t *testing.T) {
			b := impl.fresh()
			var wg sync.WaitGroup
			for p := 0; p < pickers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					load := func(i int) int { return (i + p) % 5 }
					snap := func(i int) replica.LoadSnapshot { return contractSnap(i + p) }
					for r := 0; r < rounds; r++ {
						if idx := b.PickIndex(n, load); idx < 0 || idx >= n {
							t.Errorf("PickIndex %d out of range", idx)
							return
						}
						if pr, ok := b.(PrefixRouter); ok {
							if idx := pr.PickPrefix(n, load, func(i int) int { return i * 64 }); idx < 0 || idx >= n {
								t.Errorf("PickPrefix %d out of range", idx)
								return
							}
						}
						if sb, ok := b.(SnapshotBalancer); ok {
							if idx := sb.PickPredicted(n, load, snap, 512, 16); idx < 0 || idx >= n {
								t.Errorf("PickPredicted %d out of range", idx)
								return
							}
							if pb, ok := b.(PrefixSnapshotBalancer); ok {
								if idx := pb.PickPrefixPredicted(n, load, snap, func(i int) int { return i * 96 }, 512, 16); idx < 0 || idx >= n {
									t.Errorf("PickPrefixPredicted %d out of range", idx)
									return
								}
							}
						}
					}
				}(p)
			}
			wg.Wait()
		})
	}
}
