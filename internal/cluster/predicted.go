package cluster

import (
	"qoserve/internal/predictor"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// SnapshotBalancer is the predicted-latency extension of GatewayBalancer:
// snap materializes target i's live queue state (replica.LoadSnapshot) so
// the balancer can score completion latency instead of merely comparing
// queue lengths. Gateways probe the snapshots from lock-free atomics;
// requests reach PickPredicted with their declared prompt/decode shape.
type SnapshotBalancer interface {
	GatewayBalancer
	// PickPredicted returns a target in [0, n) for a request of the given
	// shape, given each target's load and queue snapshot.
	PickPredicted(n int, load func(int) int, snap func(int) replica.LoadSnapshot, promptTokens, decodeTokens int) int
}

// PredictedLatency routes each request to the replica with the lowest
// forest-predicted completion latency — llm-d reports up to 3x better P90
// on long prefills from this over occupancy heuristics, because a queue
// of three 8K prompts and a queue of three 32-token prompts have the same
// length but very different futures. Scoring runs the trained batch-
// latency forest over each replica's LoadSnapshot (prefill backlog, chunk
// budget, decode batch statistics) via predictor.EstimateCompletion.
//
// Lowest predicted latency wins; load breaks score ties, then lowest
// index, keeping replayed runs deterministic. A nil Predictor degrades to
// the Fallback (LeastLoaded if nil), as does PickIndex for callers without
// snapshot access. Stateless apart from the fallback, so safe for
// concurrent pickers as long as the probes and the fallback are.
type PredictedLatency struct {
	// Predictor scores candidate (replica state, request shape) pairs;
	// usually the trained *predictor.Forest. Nil falls back to Fallback.
	Predictor predictor.FeaturePredictor
	// Fallback routes when no predictor is configured or the caller
	// cannot supply snapshots. Nil means LeastLoaded.
	Fallback GatewayBalancer
	// Transfer, when set and enabled, lets PickPrefixPredicted price
	// importing the cluster-best cached prefix over the interconnect
	// instead of recomputing it; nil scores local prefix credit only.
	Transfer *TransferModel
}

// PickIndex routes via the fallback balancer: without a snapshot there is
// nothing to score.
func (b *PredictedLatency) PickIndex(n int, load func(int) int) int {
	if b.Fallback != nil {
		return b.Fallback.PickIndex(n, load)
	}
	return LeastLoaded{}.PickIndex(n, load)
}

// PickPredicted returns the target with the lowest predicted completion
// latency for the request shape.
func (b *PredictedLatency) PickPredicted(n int, load func(int) int, snap func(int) replica.LoadSnapshot, promptTokens, decodeTokens int) int {
	if b.Predictor == nil {
		return b.PickIndex(n, load)
	}
	return b.pickScored(n, load, snap, promptTokens, decodeTokens)
}

// pickScored is the scoring loop, split out so the hot path is exactly the
// predictor-backed case (the nil-predictor fallback above routes through
// balancers outside the alloc-free contract).
//
//qoserve:hotpath
func (b *PredictedLatency) pickScored(n int, load func(int) int, snap func(int) replica.LoadSnapshot, promptTokens, decodeTokens int) int {
	best, bestLoad := 0, 0
	var bestScore sim.Time
	for i := 0; i < n; i++ {
		s := snap(i)
		score := predictor.EstimateCompletion(b.Predictor,
			s.PendingPrefillTokens, s.ActiveDecodes, s.SumDecodeCtx, s.MaxDecodeCtx,
			s.ChunkBudgetTokens, promptTokens, decodeTokens)
		switch {
		case i == 0:
			bestScore, bestLoad = score, load(i)
		case score < bestScore:
			best, bestScore, bestLoad = i, score, load(i)
		case score == bestScore:
			if l := load(i); l < bestLoad {
				best, bestLoad = i, l
			}
		}
	}
	return best
}

// PredictedAware is the simulation-side adapter over PredictedLatency: it
// snapshots each replica's queue state directly. Decode length uses the
// scheduler-visible estimate (EstDecodeTokens), never the ground truth.
type PredictedAware struct {
	Latency PredictedLatency
}

// Pick returns the replica with the lowest predicted completion latency
// for r.
func (b *PredictedAware) Pick(replicas []*replica.Replica, r *request.Request) int {
	decode := r.EstDecodeTokens
	if decode <= 0 {
		decode = 1
	}
	return b.Latency.PickPredicted(len(replicas),
		func(i int) int { return replicas[i].Scheduler().Pending() },
		func(i int) replica.LoadSnapshot { return replicas[i].Snapshot() },
		r.PromptTokens, decode)
}
