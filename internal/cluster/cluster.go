// Package cluster simulates multi-replica deployments: the shared
// (co-scheduled) clusters QoServe argues for, the siloed per-tier clusters
// of current practice, round-robin load balancing across replicas, and the
// capacity searches behind the paper's goodput and GPU-count results
// (Table 4, Figures 7 and 15b).
//
// The cluster also owns failure semantics. Replicas can crash, restart,
// and degrade (internal/fault injects these deterministically); the
// balancer routes around down replicas, and requests orphaned by a crash
// are re-enqueued to a healthy replica with bounded retries and
// exponential backoff. A retried request loses its KV progress — the
// cache died with the replica — but keeps its original arrival time and
// deadline, so EDF/hybrid priority and relegation decisions treat it
// exactly like a request that had been queued all along. Requests that
// exhaust the retry budget (or find no healthy replica within the park
// timeout) are failed with a reason and reported as SLO violations: no
// request is ever silently dropped.
package cluster

import (
	"fmt"
	"sort"

	"qoserve/internal/fault"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/trace"
)

// SchedulerFactory builds a fresh scheduler for one replica.
type SchedulerFactory func() sched.Scheduler

// Cluster is a set of identical replicas behind a load balancer
// (round-robin by default, as in the paper).
type Cluster struct {
	engine   *sim.Engine
	cfg      model.Config
	factory  SchedulerFactory
	replicas []*replica.Replica
	balancer Balancer
	tracer   trace.Tracer

	// Failure state.
	health   []Health
	recovery Recovery
	parked   []*request.Request // waiting for any healthy replica
	failed   []FailedRequest

	retries    uint64
	lostTokens uint64
}

// New builds a cluster of n replicas sharing the given engine.
func New(engine *sim.Engine, cfg model.Config, n int, factory SchedulerFactory) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: replica count %d", n)
	}
	c := &Cluster{
		engine:   engine,
		cfg:      cfg,
		factory:  factory,
		balancer: &RoundRobin{},
		tracer:   trace.Nop(),
		recovery: DefaultRecovery(),
		health:   make([]Health, n),
	}
	for i := 0; i < n; i++ {
		rep, err := replica.New(engine, cfg, factory())
		if err != nil {
			return nil, err
		}
		c.replicas = append(c.replicas, rep)
		c.health[i] = Health{Up: true, SlowFactor: 1}
	}
	return c, nil
}

// SetBalancer replaces the routing policy (before submitting requests).
func (c *Cluster) SetBalancer(b Balancer) { c.balancer = b }

// SetRecovery replaces the crash-recovery policy (zero fields take
// defaults). Call before submitting requests.
func (c *Cluster) SetRecovery(r Recovery) { c.recovery = r.withDefaults() }

// SetTracer attaches a tracer that receives replica up/down, retry, and
// failure events (in addition to whatever the per-replica schedulers
// record into their own tracers).
func (c *Cluster) SetTracer(t trace.Tracer) {
	if t == nil {
		t = trace.Nop()
	}
	c.tracer = t
}

// Submit routes a request via the balancer, considering only healthy
// replicas. With the whole cluster down the request parks until a replica
// restarts (or the park timeout fails it). Re-submitting a parked or
// recovered request re-enters it into the tracked population, which is
// why this counts as a recorded outcome for nosilentdrop.
//
//qoserve:outcome requeue
func (c *Cluster) Submit(r *request.Request) {
	healthy := c.healthyReplicas()
	if len(healthy) == 0 {
		c.park(r)
		return
	}
	picked := healthy[c.balancer.Pick(healthy, r)]
	picked.Submit(r)
}

// healthyReplicas returns the live subset in index order. When every
// replica is up it returns the backing slice without copying, so the
// no-failure fast path allocates nothing.
func (c *Cluster) healthyReplicas() []*replica.Replica {
	down := 0
	for i := range c.health {
		if !c.health[i].Up {
			down++
		}
	}
	if down == 0 {
		return c.replicas
	}
	healthy := make([]*replica.Replica, 0, len(c.replicas)-down)
	for i, rep := range c.replicas {
		if c.health[i].Up {
			healthy = append(healthy, rep)
		}
	}
	return healthy
}

// park queues a request while no replica is healthy and arms its timeout.
func (c *Cluster) park(r *request.Request) {
	now := c.engine.Now()
	c.parked = append(c.parked, r)
	deadline := now + c.recovery.ParkTimeout
	c.engine.At(deadline, sim.EventFunc(func(_ *sim.Engine, t sim.Time) {
		for i, p := range c.parked {
			if p == r {
				c.parked = append(c.parked[:i], c.parked[i+1:]...)
				c.failRequest(r, t, fmt.Sprintf("no healthy replica within %v", c.recovery.ParkTimeout))
				return
			}
		}
	}))
}

// flushParked re-submits every parked request, in arrival order, once a
// replica is healthy again.
func (c *Cluster) flushParked() {
	if len(c.parked) == 0 {
		return
	}
	waiting := c.parked
	c.parked = nil
	for _, r := range waiting {
		c.Submit(r)
	}
}

// failRequest permanently gives up on a request, recording the reason.
//
//qoserve:outcome fail
func (c *Cluster) failRequest(r *request.Request, now sim.Time, reason string) {
	r.FailedReason = reason
	c.failed = append(c.failed, FailedRequest{Req: r, At: now, Reason: reason})
	if c.tracer.Enabled() {
		c.tracer.RecordEvent(trace.Event{
			At: now, Kind: trace.RequestFailed, Req: r.ID, Class: r.Class.Name, Reason: reason,
		})
	}
}

// recoverRequest re-enqueues a request orphaned by a crash: progress is
// discarded (the KV cache died with the replica), the arrival time and
// deadline survive, and the resubmission is delayed by exponential
// backoff. Exhausting the retry budget fails the request with a reason.
func (c *Cluster) recoverRequest(r *request.Request, now sim.Time) {
	if r.Retries >= c.recovery.MaxRetries {
		c.failRequest(r, now, fmt.Sprintf("retry budget exhausted after %d attempts", r.Retries+1))
		return
	}
	c.lostTokens += uint64(r.ResetForRetry()) // increments r.Retries
	c.retries++
	backoff := c.recovery.Backoff << (r.Retries - 1)
	if c.tracer.Enabled() {
		c.tracer.RecordEvent(trace.Event{
			At: now, Kind: trace.RequestRetry, Req: r.ID, Class: r.Class.Name,
			Reason: fmt.Sprintf("attempt %d, backoff %v", r.Retries+1, backoff),
		})
	}
	c.engine.At(now+backoff, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
		c.Submit(r)
	}))
}

// Size is the number of replicas. (Also part of fault.Target.)
func (c *Cluster) Size() int { return len(c.replicas) }

// Crash kills replica i at the current virtual time: its in-flight work is
// orphaned and every orphan re-enqueued (or failed) per the recovery
// policy. Crashing an already-down replica is a no-op. Implements
// fault.Target.
func (c *Cluster) Crash(i int) {
	if i < 0 || i >= len(c.replicas) || !c.health[i].Up {
		return
	}
	now := c.engine.Now()
	orphans := c.replicas[i].Fail()
	c.health[i].Up = false
	c.health[i].Since = now
	c.health[i].Crashes++
	if c.tracer.Enabled() {
		c.tracer.RecordEvent(trace.Event{
			At: now, Kind: trace.ReplicaDown, Req: uint64(i),
			Reason: fmt.Sprintf("crash orphaned %d requests", len(orphans)),
		})
	}
	for _, r := range orphans {
		c.recoverRequest(r, now)
	}
}

// Restart returns crashed replica i to service with a fresh scheduler and
// an empty KV cache, then re-submits any parked requests. Restarting a
// live replica is a no-op. Implements fault.Target.
func (c *Cluster) Restart(i int) {
	if i < 0 || i >= len(c.replicas) || c.health[i].Up {
		return
	}
	now := c.engine.Now()
	if err := c.replicas[i].Restart(c.factory()); err != nil {
		panic(fmt.Sprintf("cluster: restart replica %d: %v", i, err))
	}
	c.health[i].Downtime += now - c.health[i].Since
	c.health[i].Up = true
	c.health[i].Since = now
	c.health[i].Restarts++
	if c.tracer.Enabled() {
		c.tracer.RecordEvent(trace.Event{At: now, Kind: trace.ReplicaUp, Req: uint64(i)})
	}
	c.flushParked()
}

// SetSlow sets replica i's execution-time multiplier (<= 1 restores
// nominal speed). Implements fault.Target.
func (c *Cluster) SetSlow(i int, factor float64) {
	if i < 0 || i >= len(c.replicas) {
		return
	}
	c.replicas[i].SetSlowFactor(factor)
	c.health[i].SlowFactor = c.replicas[i].SlowFactor()
	if c.tracer.Enabled() {
		c.tracer.RecordEvent(trace.Event{
			At: c.engine.Now(), Kind: trace.ReplicaSlow, Req: uint64(i),
			Reason: fmt.Sprintf("factor %g", c.replicas[i].SlowFactor()),
		})
	}
}

// Replicas returns the cluster's replicas.
func (c *Cluster) Replicas() []*replica.Replica { return c.replicas }

// GPUs is the total GPU count (replicas x TP degree).
func (c *Cluster) GPUs(cfg model.Config) int { return len(c.replicas) * cfg.GPUs() }

// RunShared simulates a shared cluster of n replicas serving the whole
// trace, returning the metrics summary.
func RunShared(cfg model.Config, n int, factory SchedulerFactory, trace []*request.Request, horizon sim.Time) (*metrics.Summary, error) {
	sum, _, err := RunFaulty(cfg, n, factory, trace, horizon, nil, Recovery{})
	return sum, err
}

// RunFaulty simulates a shared cluster of n replicas serving the trace
// while the fault schedule plays out, returning the metrics summary and
// the cluster's failure/recovery counters. A nil or empty schedule reduces
// to RunShared. Determinism: with a fixed trace and schedule the run is a
// pure function of its inputs — two runs produce identical summaries.
func RunFaulty(cfg model.Config, n int, factory SchedulerFactory, trace []*request.Request, horizon sim.Time, faults fault.Schedule, rec Recovery) (*metrics.Summary, FaultStats, error) {
	engine := sim.NewEngine()
	c, err := New(engine, cfg, n, factory)
	if err != nil {
		return nil, FaultStats{}, err
	}
	c.SetRecovery(rec)
	if len(faults) > 0 {
		if err := fault.Arm(engine, c, faults); err != nil {
			return nil, FaultStats{}, err
		}
	}
	scheduleArrivals(engine, c, trace)
	end := engine.RunUntil(horizon)
	return metrics.NewSummary(trace, end, n), c.FaultStats(), nil
}

// SiloPlan maps QoS class names to dedicated replica counts and the
// scheduler used inside each silo.
type SiloPlan struct {
	// Replicas per class name, e.g. {"Q1": 7, "Q2": 3, "Q3": 3}.
	Replicas map[string]int
	// Factory builds the scheduler for a silo serving the given class.
	Factory func(class string) sched.Scheduler
}

// TotalReplicas sums the plan's replica counts.
func (p SiloPlan) TotalReplicas() int {
	n := 0
	for _, v := range p.Replicas {
		n += v
	}
	return n
}

// RunSiloed simulates the siloed deployment: one independent cluster per
// QoS class, requests routed by class, round-robin within each silo.
func RunSiloed(cfg model.Config, plan SiloPlan, trace []*request.Request, horizon sim.Time) (*metrics.Summary, error) {
	engine := sim.NewEngine()
	// Build silos in sorted class order: map iteration order would vary the
	// construction sequence run to run, and every structure hanging off the
	// shared engine must be reproducible for bit-identical replays.
	classes := make([]string, 0, len(plan.Replicas))
	for class := range plan.Replicas {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	silos := make(map[string]*Cluster, len(plan.Replicas))
	for _, class := range classes {
		class := class
		c, err := New(engine, cfg, plan.Replicas[class], func() sched.Scheduler { return plan.Factory(class) })
		if err != nil {
			return nil, err
		}
		silos[class] = c
	}
	for _, r := range trace {
		silo, ok := silos[r.Class.Name]
		if !ok {
			return nil, fmt.Errorf("cluster: no silo for class %q", r.Class.Name)
		}
		r := r
		target := silo
		engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			target.Submit(r)
		}))
	}
	end := engine.RunUntil(horizon)
	return metrics.NewSummary(trace, end, plan.TotalReplicas()), nil
}

func scheduleArrivals(engine *sim.Engine, c *Cluster, trace []*request.Request) {
	for _, r := range trace {
		r := r
		engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			c.Submit(r)
		}))
	}
}
