// Package cluster simulates multi-replica deployments: the shared
// (co-scheduled) clusters QoServe argues for, the siloed per-tier clusters
// of current practice, round-robin load balancing across replicas, and the
// capacity searches behind the paper's goodput and GPU-count results
// (Table 4, Figures 7 and 15b).
package cluster

import (
	"fmt"

	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/replica"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// SchedulerFactory builds a fresh scheduler for one replica.
type SchedulerFactory func() sched.Scheduler

// Cluster is a set of identical replicas behind a load balancer
// (round-robin by default, as in the paper).
type Cluster struct {
	engine   *sim.Engine
	replicas []*replica.Replica
	balancer Balancer
}

// New builds a cluster of n replicas sharing the given engine.
func New(engine *sim.Engine, cfg model.Config, n int, factory SchedulerFactory) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: replica count %d", n)
	}
	c := &Cluster{engine: engine, balancer: &RoundRobin{}}
	for i := 0; i < n; i++ {
		rep, err := replica.New(engine, cfg, factory())
		if err != nil {
			return nil, err
		}
		c.replicas = append(c.replicas, rep)
	}
	return c, nil
}

// SetBalancer replaces the routing policy (before submitting requests).
func (c *Cluster) SetBalancer(b Balancer) { c.balancer = b }

// Submit routes a request via the balancer.
func (c *Cluster) Submit(r *request.Request) {
	c.replicas[c.balancer.Pick(c.replicas, r)].Submit(r)
}

// Replicas returns the cluster's replicas.
func (c *Cluster) Replicas() []*replica.Replica { return c.replicas }

// Size is the number of replicas.
func (c *Cluster) Size() int { return len(c.replicas) }

// GPUs is the total GPU count (replicas x TP degree).
func (c *Cluster) GPUs(cfg model.Config) int { return len(c.replicas) * cfg.GPUs() }

// RunShared simulates a shared cluster of n replicas serving the whole
// trace, returning the metrics summary.
func RunShared(cfg model.Config, n int, factory SchedulerFactory, trace []*request.Request, horizon sim.Time) (*metrics.Summary, error) {
	engine := sim.NewEngine()
	c, err := New(engine, cfg, n, factory)
	if err != nil {
		return nil, err
	}
	scheduleArrivals(engine, c, trace)
	end := engine.RunUntil(horizon)
	return metrics.NewSummary(trace, end, n), nil
}

// SiloPlan maps QoS class names to dedicated replica counts and the
// scheduler used inside each silo.
type SiloPlan struct {
	// Replicas per class name, e.g. {"Q1": 7, "Q2": 3, "Q3": 3}.
	Replicas map[string]int
	// Factory builds the scheduler for a silo serving the given class.
	Factory func(class string) sched.Scheduler
}

// TotalReplicas sums the plan's replica counts.
func (p SiloPlan) TotalReplicas() int {
	n := 0
	for _, v := range p.Replicas {
		n += v
	}
	return n
}

// RunSiloed simulates the siloed deployment: one independent cluster per
// QoS class, requests routed by class, round-robin within each silo.
func RunSiloed(cfg model.Config, plan SiloPlan, trace []*request.Request, horizon sim.Time) (*metrics.Summary, error) {
	engine := sim.NewEngine()
	silos := make(map[string]*Cluster, len(plan.Replicas))
	for class, n := range plan.Replicas {
		class := class
		c, err := New(engine, cfg, n, func() sched.Scheduler { return plan.Factory(class) })
		if err != nil {
			return nil, err
		}
		silos[class] = c
	}
	for _, r := range trace {
		silo, ok := silos[r.Class.Name]
		if !ok {
			return nil, fmt.Errorf("cluster: no silo for class %q", r.Class.Name)
		}
		r := r
		target := silo
		engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			target.Submit(r)
		}))
	}
	end := engine.RunUntil(horizon)
	return metrics.NewSummary(trace, end, plan.TotalReplicas()), nil
}

func scheduleArrivals(engine *sim.Engine, c *Cluster, trace []*request.Request) {
	for _, r := range trace {
		r := r
		engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			c.Submit(r)
		}))
	}
}
