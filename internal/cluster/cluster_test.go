package cluster

import (
	"testing"

	"qoserve/internal/core"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

var testDS = workload.Dataset{Name: "tiny",
	Prompt: workload.TokenDist{P50: 400, P90: 1200},
	Decode: workload.TokenDist{P50: 10, P90: 40},
}

func gen(t testing.TB, n int, qps float64, seed int64) []*request.Request {
	t.Helper()
	reqs, err := workload.Generate(workload.Spec{
		Dataset:  testDS,
		Tiers:    workload.EqualTiers(qos.Table3()),
		Arrivals: workload.Poisson{QPS: qps},
		Requests: n,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func sarathiFactory() sched.Scheduler { return sched.NewSarathi(sched.FCFS, 256) }

func qoserveFactory() sched.Scheduler {
	return core.New(predictor.Oracle{Config: model.Llama3_8B_A100_TP1()}, core.DefaultOptions())
}

func TestNewValidation(t *testing.T) {
	engine := sim.NewEngine()
	if _, err := New(engine, model.Llama3_8B_A100_TP1(), 0, sarathiFactory); err == nil {
		t.Error("zero replicas accepted")
	}
	bad := model.Llama3_8B_A100_TP1()
	bad.TP = -1
	if _, err := New(engine, bad, 1, sarathiFactory); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	trace := gen(t, 90, 8, 3)
	engine := sim.NewEngine()
	c, err := New(engine, mc, 3, sarathiFactory)
	if err != nil {
		t.Fatal(err)
	}
	scheduleArrivals(engine, c, trace)
	engine.Run()
	for i, rep := range c.Replicas() {
		if got := len(rep.Served()); got != 30 {
			t.Errorf("replica %d served %d, want 30", i, got)
		}
	}
	if c.GPUs(mc) != 3 {
		t.Errorf("GPUs = %d", c.GPUs(mc))
	}
}

func TestSharedClusterScalesThroughput(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	// A load that swamps one replica should be fine on four.
	trace1 := gen(t, 120, 6, 7)
	one, err := RunShared(mc, 1, sarathiFactory, trace1, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	trace4 := gen(t, 120, 6, 7)
	four, err := RunShared(mc, 4, sarathiFactory, trace4, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if four.ViolationRate(metrics.All) >= one.ViolationRate(metrics.All) &&
		one.ViolationRate(metrics.All) > 0 {
		t.Errorf("4 replicas (%v) not better than 1 (%v)",
			four.ViolationRate(metrics.All), one.ViolationRate(metrics.All))
	}
	if four.TTFTQuantile(metrics.All, 0.9) >= one.TTFTQuantile(metrics.All, 0.9) {
		t.Error("p90 TTFT did not improve with replicas")
	}
}

func TestSiloedRoutesByClass(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	trace := gen(t, 60, 3, 9)
	plan := SiloPlan{
		Replicas: map[string]int{"Q1": 1, "Q2": 1, "Q3": 1},
		Factory: func(class string) sched.Scheduler {
			if class == "Q1" {
				return sched.NewSarathi(sched.FCFS, 256)
			}
			return sched.NewSarathi(sched.FCFS, sched.RelaxedChunk)
		},
	}
	if plan.TotalReplicas() != 3 {
		t.Fatalf("total replicas = %d", plan.TotalReplicas())
	}
	sum, err := RunSiloed(mc, plan, trace, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
	if sum.Replicas != 3 {
		t.Fatalf("summary replicas = %d", sum.Replicas)
	}
}

func TestSiloedRejectsUnknownClass(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	trace := gen(t, 10, 3, 9)
	plan := SiloPlan{
		Replicas: map[string]int{"Q1": 1}, // missing Q2/Q3
		Factory:  func(string) sched.Scheduler { return sched.NewSarathi(sched.FCFS, 256) },
	}
	if _, err := RunSiloed(mc, plan, trace, sim.Forever); err == nil {
		t.Error("missing silo accepted")
	}
}

func TestMaxGoodputFindsCrossover(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	traceGen := func(qps float64) ([]*request.Request, error) {
		return workload.Generate(workload.Spec{
			Dataset:  testDS,
			Tiers:    workload.EqualTiers(qos.Table3()),
			Arrivals: workload.Poisson{QPS: qps},
			Requests: 150,
			Seed:     11,
		})
	}
	qps, sum, err := MaxGoodput(mc, sarathiFactory, traceGen, SearchOptions{Tolerance: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if qps <= 0.1 || qps >= 64 {
		t.Fatalf("implausible capacity %v QPS", qps)
	}
	if sum.ViolationRate(metrics.All) > 0.01 {
		t.Fatalf("returned summary violates target: %v", sum.ViolationRate(metrics.All))
	}
	// Just above the found capacity, the target must fail (bracketing).
	trace, err := traceGen(qps * 1.5)
	if err != nil {
		t.Fatal(err)
	}
	over, err := RunShared(mc, 1, sarathiFactory, trace, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if over.ViolationRate(metrics.All) <= 0.01 {
		t.Errorf("50%% above capacity still meets target")
	}
}

func TestMinReplicas(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	mkTrace := func() ([]*request.Request, error) {
		return workload.Generate(workload.Spec{
			Dataset:  testDS,
			Tiers:    workload.EqualTiers(qos.Table3()),
			Arrivals: workload.Poisson{QPS: 8},
			Requests: 160,
			Seed:     13,
		})
	}
	n, sum, err := MinReplicas(mc, qoserveFactory, mkTrace, 16, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 16 {
		t.Fatalf("n = %d", n)
	}
	if sum.ViolationRate(metrics.All) > 0.01 {
		t.Fatalf("min-replica run violates: %v", sum.ViolationRate(metrics.All))
	}
	// n-1 replicas must fail, otherwise n wasn't minimal.
	if n > 1 {
		trace, err := mkTrace()
		if err != nil {
			t.Fatal(err)
		}
		under, err := RunShared(mc, n-1, qoserveFactory, trace, sim.Forever)
		if err != nil {
			t.Fatal(err)
		}
		if under.ViolationRate(metrics.All) <= 0.01 {
			t.Errorf("%d replicas also meet the target; %d not minimal", n-1, n)
		}
	}
}

func TestMinReplicasInsufficientBudget(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	mkTrace := func() ([]*request.Request, error) {
		return workload.Generate(workload.Spec{
			Dataset:  testDS,
			Tiers:    workload.EqualTiers(qos.Table3()),
			Arrivals: workload.Poisson{QPS: 40},
			Requests: 200,
			Seed:     13,
		})
	}
	if _, _, err := MinReplicas(mc, sarathiFactory, mkTrace, 1, SearchOptions{}); err == nil {
		t.Error("1 replica at 40 QPS accepted")
	}
}

func TestBalancers(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	engine := sim.NewEngine()
	c, err := New(engine, mc, 3, sarathiFactory)
	if err != nil {
		t.Fatal(err)
	}

	// Round-robin cycles deterministically.
	rr := &RoundRobin{}
	picks := []int{}
	for i := 0; i < 6; i++ {
		picks = append(picks, rr.Pick(c.Replicas(), nil))
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("round-robin picks = %v", picks)
		}
	}

	// Least-pending prefers the idle replica.
	trace := gen(t, 6, 50, 99)
	for _, r := range trace[:4] {
		c.Replicas()[0].Submit(r)
	}
	for _, r := range trace[4:5] {
		c.Replicas()[1].Submit(r)
	}
	if got := (LeastPending{}).Pick(c.Replicas(), nil); got != 2 {
		t.Fatalf("least-pending picked %d, want idle replica 2", got)
	}

	// SetBalancer is honored by Submit.
	c.SetBalancer(LeastPending{})
	c.Submit(trace[5])
	if got := len(c.Replicas()[2].Served()); got != 1 {
		t.Fatalf("replica 2 served %d, want 1", got)
	}
}

func TestSizePartition(t *testing.T) {
	trace := gen(t, 90, 3, 41) // ~30 per class
	sizes, err := SizePartition(trace, 30, map[string]float64{
		"Q1": 2, "Q2": 5, "Q3": 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Q1 gets ~10 QPS at goodput 2 -> ~5 replicas; Q2/Q3 ~10/5 -> 2.
	if sizes["Q1"] < 4 || sizes["Q1"] > 6 {
		t.Errorf("Q1 size = %d", sizes["Q1"])
	}
	if sizes["Q2"] < 2 || sizes["Q2"] > 3 {
		t.Errorf("Q2 size = %d", sizes["Q2"])
	}
	if _, err := SizePartition(trace, 30, map[string]float64{"Q1": 2}); err == nil {
		t.Error("missing goodput accepted")
	}
	if _, err := SizePartition(nil, 30, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestRunPartitioned(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	trace := gen(t, 60, 3, 43)
	plan := PartitionedPlan{
		Replicas: map[string]int{"Q1": 1, "Q2": 1, "Q3": 1},
		ChunkFor: func(class string) int {
			if class == "Q1" {
				return 256
			}
			return 1024
		},
		Policy: sched.EDF,
	}
	if plan.TotalReplicas() != 3 {
		t.Fatalf("total = %d", plan.TotalReplicas())
	}
	sum, err := RunPartitioned(mc, plan, trace, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
	bad := plan
	bad.ChunkFor = nil
	if _, err := RunPartitioned(mc, bad, trace, sim.Forever); err == nil {
		t.Error("nil ChunkFor accepted")
	}
}
