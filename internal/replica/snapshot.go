package replica

import (
	"fmt"
	"strconv"
	"strings"

	"qoserve/internal/request"
)

// LoadSnapshot is one replica's queue state at a routing decision: the
// inputs a latency-predicting balancer needs to score "what would this
// replica's next iterations look like with one more request on it". It is
// deliberately small and flat — the gateway materializes one per replica
// per pick from lock-free atomics, so the struct must stay cheap to copy
// and free of pointers.
//
// The fields mirror the predictor's feature space (profile.Features): the
// prefill side is summarized by the backlog of unprefilled prompt tokens
// and the chunk budget the replica last planned, the decode side by the
// count/sum/max of in-flight decode contexts.
type LoadSnapshot struct {
	// QueuedRequests counts admitted requests whose prompt is not yet
	// fully prefilled (phases Queued and Prefill).
	QueuedRequests int
	// PendingPrefillTokens is the total prompt tokens those requests have
	// left to prefill — the backlog an arriving prompt queues behind.
	PendingPrefillTokens int
	// ActiveDecodes counts requests in the Decode phase.
	ActiveDecodes int
	// SumDecodeCtx / MaxDecodeCtx summarize the decode-phase context
	// lengths (the batch statistics of Algorithm 1).
	SumDecodeCtx int
	MaxDecodeCtx int
	// ChunkBudgetTokens is the prefill chunk of the replica's most recent
	// batch that contained any prefill — the granularity at which its
	// scheduler is currently feeding prompts through. Zero means the
	// replica has not planned a prefill yet.
	ChunkBudgetTokens int
}

// snapshotWireVersion prefixes the wire encoding so the format can evolve.
const snapshotWireVersion = "v1"

// maxSnapshotValue bounds each decoded field. It is far above anything a
// real replica reports (a trillion tokens) and keeps invariant arithmetic
// comfortably inside int64 on every platform.
const maxSnapshotValue = 1 << 40

// Validate checks the internal consistency a snapshot taken atomically
// from one replica must satisfy. Gateways build snapshots from independent
// atomics and may transiently violate these between fields; the wire
// decoder enforces them so anything crossing a process boundary is
// self-consistent.
func (s LoadSnapshot) Validate() error {
	fields := [...]struct {
		name string
		v    int
	}{
		{"queued_requests", s.QueuedRequests},
		{"pending_prefill_tokens", s.PendingPrefillTokens},
		{"active_decodes", s.ActiveDecodes},
		{"sum_decode_ctx", s.SumDecodeCtx},
		{"max_decode_ctx", s.MaxDecodeCtx},
		{"chunk_budget_tokens", s.ChunkBudgetTokens},
	}
	for _, f := range fields {
		if f.v < 0 {
			return fmt.Errorf("replica: snapshot %s %d is negative", f.name, f.v)
		}
		if f.v > maxSnapshotValue {
			return fmt.Errorf("replica: snapshot %s %d exceeds %d", f.name, f.v, maxSnapshotValue)
		}
	}
	if s.QueuedRequests == 0 && s.PendingPrefillTokens != 0 {
		return fmt.Errorf("replica: snapshot has %d pending prefill tokens but no queued requests", s.PendingPrefillTokens)
	}
	if s.PendingPrefillTokens < s.QueuedRequests {
		// Every queued request owes at least one prefill token (prefix
		// hits are capped at prompt-1).
		return fmt.Errorf("replica: snapshot has %d queued requests but only %d pending prefill tokens",
			s.QueuedRequests, s.PendingPrefillTokens)
	}
	if s.ActiveDecodes == 0 {
		if s.SumDecodeCtx != 0 || s.MaxDecodeCtx != 0 {
			return fmt.Errorf("replica: snapshot has decode context (%d sum, %d max) but no active decodes",
				s.SumDecodeCtx, s.MaxDecodeCtx)
		}
		return nil
	}
	if s.MaxDecodeCtx < 1 {
		return fmt.Errorf("replica: snapshot has %d active decodes but max context %d", s.ActiveDecodes, s.MaxDecodeCtx)
	}
	if s.SumDecodeCtx < s.MaxDecodeCtx {
		return fmt.Errorf("replica: snapshot sum decode ctx %d below max %d", s.SumDecodeCtx, s.MaxDecodeCtx)
	}
	// sum <= decodes*max, written division-side to stay overflow-free:
	// ceil(sum/decodes) <= max.
	if (s.SumDecodeCtx+s.ActiveDecodes-1)/s.ActiveDecodes > s.MaxDecodeCtx {
		return fmt.Errorf("replica: snapshot sum decode ctx %d exceeds %d decodes x max %d",
			s.SumDecodeCtx, s.ActiveDecodes, s.MaxDecodeCtx)
	}
	return nil
}

// Encode renders the snapshot in its canonical wire form:
//
//	v1:<queued>,<pending_prefill>,<decodes>,<sum_ctx>,<max_ctx>,<chunk>
//
// Decimal fields, no padding. DecodeLoadSnapshot(s.Encode()) round-trips
// exactly for any snapshot that passes Validate.
func (s LoadSnapshot) Encode() string {
	return fmt.Sprintf("%s:%d,%d,%d,%d,%d,%d", snapshotWireVersion,
		s.QueuedRequests, s.PendingPrefillTokens,
		s.ActiveDecodes, s.SumDecodeCtx, s.MaxDecodeCtx,
		s.ChunkBudgetTokens)
}

// DecodeLoadSnapshot parses the wire form produced by Encode, rejecting
// unknown versions, malformed fields, and snapshots that violate the
// Validate invariants.
func DecodeLoadSnapshot(wire string) (LoadSnapshot, error) {
	var s LoadSnapshot
	version, body, ok := strings.Cut(wire, ":")
	if !ok {
		return s, fmt.Errorf("replica: snapshot %q has no version prefix", wire)
	}
	if version != snapshotWireVersion {
		return s, fmt.Errorf("replica: unsupported snapshot version %q", version)
	}
	parts := strings.Split(body, ",")
	if len(parts) != 6 {
		return s, fmt.Errorf("replica: snapshot has %d fields, want 6", len(parts))
	}
	dst := [...]*int{
		&s.QueuedRequests, &s.PendingPrefillTokens,
		&s.ActiveDecodes, &s.SumDecodeCtx, &s.MaxDecodeCtx,
		&s.ChunkBudgetTokens,
	}
	for i, p := range parts {
		// Reject non-canonical spellings ("+1", " 1", "01") so encode and
		// decode stay a strict round trip.
		if p == "" || (len(p) > 1 && p[0] == '0') || p[0] == '+' {
			return s, fmt.Errorf("replica: snapshot field %d %q is not canonical decimal", i, p)
		}
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return s, fmt.Errorf("replica: snapshot field %d: %v", i, err)
		}
		if v > maxSnapshotValue {
			return s, fmt.Errorf("replica: snapshot field %d value %d exceeds %d", i, v, maxSnapshotValue)
		}
		*dst[i] = int(v)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// Snapshot summarizes the replica's current queue state for predicted-
// latency routing. The simulation runs single-threaded on the event
// engine, so the walk over the active list needs no locking; the live
// gateway maintains the equivalent counters as atomics instead.
func (r *Replica) Snapshot() LoadSnapshot {
	s := LoadSnapshot{ChunkBudgetTokens: r.lastChunk}
	for _, req := range r.active {
		switch req.Phase() {
		case request.Done:
		case request.Decode:
			s.ActiveDecodes++
			c := req.ContextLen()
			s.SumDecodeCtx += c
			if c > s.MaxDecodeCtx {
				s.MaxDecodeCtx = c
			}
		default: // Queued or Prefill: prompt not finished yet
			s.QueuedRequests++
			s.PendingPrefillTokens += req.RemainingPrefill()
		}
	}
	return s
}
