package replica

import (
	"testing"

	"qoserve/internal/core"
	"qoserve/internal/kvcache"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
	"qoserve/internal/workload"
)

func smallTrace(t *testing.T, n int, qps float64) []*request.Request {
	t.Helper()
	// Modest token counts keep unit-test runtime low.
	ds := workload.Dataset{Name: "tiny",
		Prompt: workload.TokenDist{P50: 400, P90: 1200},
		Decode: workload.TokenDist{P50: 10, P90: 40},
	}
	reqs, err := workload.Generate(workload.Spec{
		Dataset:  ds,
		Tiers:    workload.EqualTiers(qos.Table3()),
		Arrivals: workload.Poisson{QPS: qps},
		Requests: n,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

func TestRunDrainsTraceSarathi(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	trace := smallTrace(t, 60, 2)
	sum, rep, err := Run(mc, sched.NewSarathi(sched.FCFS, 256), trace, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
	if rep.Iterations() == 0 || rep.TokensProcessed() == 0 {
		t.Fatal("no work recorded")
	}
	if rep.Scheduler().Pending() != 0 {
		t.Fatal("scheduler still pending")
	}
	// All KV released at the end.
	if rep.KV().Holders() != 0 {
		t.Fatalf("%d KV holders leaked", rep.KV().Holders())
	}
	if u := rep.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestRunDrainsTraceQoServe(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	trace := smallTrace(t, 60, 2)
	s := core.New(predictor.Oracle{Config: mc}, core.DefaultOptions())
	sum, rep, err := Run(mc, s, trace, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
	if rep.KV().Holders() != 0 {
		t.Fatalf("%d KV holders leaked", rep.KV().Holders())
	}
	// At this light load QoServe should meet essentially all SLOs.
	if v := sum.ViolationRate(metrics.All); v > 0.05 {
		t.Errorf("violation rate %v at light load", v)
	}
}

func TestRunHorizonTruncates(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	trace := smallTrace(t, 60, 2)
	sum, _, err := Run(mc, sched.NewSarathi(sched.FCFS, 256), trace, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sum.End != 5*sim.Second {
		t.Fatalf("end = %v, want 5s", sum.End)
	}
	if sum.CompletionRate(metrics.All) >= 1 {
		t.Fatal("everything completed despite truncation")
	}
}

func TestTTFTOrderReflectsPolicy(t *testing.T) {
	// Under FCFS a tiny urgent request behind a giant one waits; EDF
	// (with an interactive class) serves it promptly.
	mc := model.Llama3_8B_A100_TP1()
	giant := &request.Request{ID: 1, App: "Q3", Class: qos.Table3()[2],
		Arrival: 0, PromptTokens: 12000, DecodeTokens: 2}
	urgent := &request.Request{ID: 2, App: "Q1", Class: qos.Table3()[0],
		Arrival: 10 * sim.Millisecond, PromptTokens: 100, DecodeTokens: 2}

	runWith := func(s sched.Scheduler) (giantTTFT, urgentTTFT sim.Time) {
		tr := workload.Clone([]*request.Request{giant, urgent})
		_, _, err := Run(mc, s, tr, sim.Forever)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := tr[0].TTFT()
		u, _ := tr[1].TTFT()
		return g, u
	}

	_, uFCFS := runWith(sched.NewSarathi(sched.FCFS, 256))
	_, uEDF := runWith(sched.NewSarathi(sched.EDF, 256))
	if uEDF >= uFCFS {
		t.Errorf("EDF urgent TTFT %v not better than FCFS %v", uEDF, uFCFS)
	}
}

func TestKVPressureDefersAdmission(t *testing.T) {
	// A replica with a tiny KV cache must defer prefill admissions (full
	// final-context reservation) and still finish everything.
	mc := model.Llama3_8B_A100_TP1()
	engine := sim.NewEngine()
	rep, err := New(engine, mc, sched.NewSarathi(sched.FCFS, 256))
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the cache to ~1200 tokens.
	small, err := kvcache.NewManager(1200, 16)
	if err != nil {
		t.Fatal(err)
	}
	rep.kv = small

	var reqs []*request.Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, &request.Request{
			ID: uint64(i + 1), App: "Q3", Class: qos.Table3()[2],
			Arrival: sim.Time(i) * sim.Millisecond, PromptTokens: 500, DecodeTokens: 30,
		})
	}
	for _, r := range reqs {
		r := r
		engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			rep.Submit(r)
		}))
	}
	engine.Run()
	for _, r := range reqs {
		if r.Phase() != request.Done {
			t.Fatalf("request %d stuck in %v under KV pressure", r.ID, r.Phase())
		}
	}
	if rep.KVDeferrals() == 0 {
		t.Error("tiny cache exercised no admission deferral")
	}
	if small.Holders() != 0 {
		t.Errorf("%d KV holders leaked", small.Holders())
	}
}

func TestDeterminism(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	run1, _, err := Run(mc, sched.NewSarathi(sched.EDF, 256), smallTrace(t, 40, 3), sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	run2, _, err := Run(mc, sched.NewSarathi(sched.EDF, 256), smallTrace(t, 40, 3), sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if run1.End != run2.End {
		t.Fatalf("non-deterministic end: %v vs %v", run1.End, run2.End)
	}
	for i := range run1.Outcomes {
		if run1.Outcomes[i] != run2.Outcomes[i] {
			t.Fatalf("outcome %d differs", i)
		}
	}
}

func BenchmarkReplicaSarathi(b *testing.B) {
	mc := model.Llama3_8B_A100_TP1()
	ds := workload.Dataset{Name: "tiny",
		Prompt: workload.TokenDist{P50: 400, P90: 1200},
		Decode: workload.TokenDist{P50: 10, P90: 40},
	}
	reqs, err := workload.Generate(workload.Spec{
		Dataset: ds, Tiers: workload.EqualTiers(qos.Table3()),
		Arrivals: workload.Poisson{QPS: 3}, Requests: 200, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := workload.Clone(reqs)
		if _, _, err := Run(mc, sched.NewSarathi(sched.FCFS, 256), tr, sim.Forever); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOversizedRequestRejectedNotLivelocked(t *testing.T) {
	// A request whose context exceeds the whole cache must be rejected at
	// submit — without the guard its admission would retry forever.
	mc := model.Llama3_8B_A100_TP1()
	engine := sim.NewEngine()
	rep, err := New(engine, mc, sched.NewSarathi(sched.FCFS, 256))
	if err != nil {
		t.Fatal(err)
	}
	small, err := kvcache.NewManager(256, 16)
	if err != nil {
		t.Fatal(err)
	}
	rep.kv = small

	huge := &request.Request{ID: 1, App: "Q3", Class: qos.Table3()[2],
		Arrival: 0, PromptTokens: 1000, DecodeTokens: 10}
	ok := &request.Request{ID: 2, App: "Q3", Class: qos.Table3()[2],
		Arrival: sim.Millisecond, PromptTokens: 100, DecodeTokens: 5}
	engine.At(0, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) { rep.Submit(huge) }))
	engine.At(sim.Millisecond, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) { rep.Submit(ok) }))
	engine.RunUntil(10 * sim.Minute)
	// An admission livelock would retry every 10 ms for the whole run
	// (~60000 events); a clean rejection leaves only the handful of real
	// iterations.
	if engine.Fired() > 1000 {
		t.Fatalf("%d events fired: admission livelock", engine.Fired())
	}
	if rep.Rejected() != 1 {
		t.Fatalf("rejected = %d, want 1", rep.Rejected())
	}
	if huge.Phase() != request.Queued {
		t.Fatalf("rejected request progressed to %v", huge.Phase())
	}
	if ok.Phase() != request.Done {
		t.Fatalf("serviceable request stuck in %v", ok.Phase())
	}
	// The rejected request reads as a violation once its deadline passes.
	sum := metrics.NewSummary([]*request.Request{huge, ok}, 2*sim.Hour, 1)
	if got := sum.ViolationRate(metrics.All); got != 0.5 {
		t.Fatalf("violation rate = %v, want 0.5", got)
	}
}

func TestKickRestartsIdleReplica(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	engine := sim.NewEngine()
	s := sched.NewSarathi(sched.FCFS, 256)
	rep, err := New(engine, mc, s)
	if err != nil {
		t.Fatal(err)
	}
	// Feed the scheduler behind the replica's back; the replica is idle.
	r := &request.Request{ID: 1, App: "Q3", Class: qos.Table3()[2],
		Arrival: 0, PromptTokens: 64, DecodeTokens: 2}
	s.Add(r, 0)
	rep.Kick()
	engine.Run()
	if r.Phase() != request.Done {
		t.Fatalf("kicked work not served: %v", r.Phase())
	}
	rep.Kick() // idle + no pending: harmless
}
