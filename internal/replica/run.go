package replica

import (
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// Run simulates a single replica serving the trace, injecting each request
// at its arrival time, until either all requests finish or the horizon is
// reached (sim.Forever runs to completion). It returns the run's metrics
// summary and the replica for further inspection.
func Run(cfg model.Config, sch sched.Scheduler, trace []*request.Request, horizon sim.Time) (*metrics.Summary, *Replica, error) {
	engine := sim.NewEngine()
	rep, err := New(engine, cfg, sch)
	if err != nil {
		return nil, nil, err
	}
	for _, req := range trace {
		req := req
		// Priority -1 delivers arrivals before any iteration-completion
		// event at the same timestamp, so a completing iteration can
		// batch a simultaneous arrival.
		engine.AtPriority(req.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			rep.Submit(req)
		}))
	}
	end := engine.RunUntil(horizon)
	return metrics.NewSummary(trace, end, 1), rep, nil
}
