package replica

import (
	"testing"

	"qoserve/internal/kvcache"
	"qoserve/internal/metrics"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"

	"qoserve/internal/model"
)

// Sequential turns of one conversation served by one replica: every turn
// after the first must be served from the prefix cache, skipping that much
// prefill.
func TestPrefixHitsSkipPrefill(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	chain := kvcache.SyntheticChain(9, 0, kvcache.ChainBlocks(800, 16))
	var reqs []*request.Request
	for i := 0; i < 3; i++ {
		reqs = append(reqs, &request.Request{
			ID: uint64(i + 1), App: "Q1", Class: qos.Table3()[0],
			// Seconds apart, so turn i completes (and unpins) before i+1.
			Arrival:      sim.Time(i) * 10 * sim.Second,
			PromptTokens: 800, DecodeTokens: 10,
			PrefixHashes: chain,
		})
	}
	sum, rep, err := Run(mc, sched.NewSarathi(sched.FCFS, 256), reqs, sim.Forever)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.CompletionRate(metrics.All); got != 1 {
		t.Fatalf("completion rate = %v", got)
	}
	perTurn := uint64(len(chain) * 16)
	if got := rep.PrefixHitTokens(); got != 2*perTurn {
		t.Fatalf("prefix hit tokens = %d, want %d (turns 2 and 3 fully cached)", got, 2*perTurn)
	}
	// The first hit request started with PrefilledTokens == hit, so its
	// recorded prefill work shrank accordingly.
	if reqs[1].PrefixHitTokens != int(perTurn) {
		t.Fatalf("request hit = %d, want %d", reqs[1].PrefixHitTokens, perTurn)
	}
	if rep.KV().Holders() != 0 {
		t.Errorf("%d KV holders leaked", rep.KV().Holders())
	}
}

// A replica with a DRAM spill tier charges reload time when a demoted
// prefix comes back, and ConfigureKV refuses reconfiguration mid-flight.
func TestConfigureKVAndReload(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	engine := sim.NewEngine()
	rep, err := New(engine, mc, sched.NewSarathi(sched.FCFS, 256))
	if err != nil {
		t.Fatal(err)
	}
	// Tiny HBM with a DRAM tier big enough to keep demoted blocks.
	if err := rep.ConfigureKV(kvcache.Config{CapacityTokens: 1504, DRAMTokens: 4096}); err != nil {
		t.Fatal(err)
	}
	chain := kvcache.SyntheticChain(4, 0, kvcache.ChainBlocks(640, 16))
	mk := func(id uint64, at sim.Time, chain []uint64) *request.Request {
		return &request.Request{
			ID: id, App: "Q1", Class: qos.Table3()[0],
			Arrival: at, PromptTokens: 640, DecodeTokens: 8,
			PrefixHashes: chain,
		}
	}
	reqs := []*request.Request{
		mk(1, 0, chain),
		// A fat private request squeezes the cache, demoting turn 1's blocks.
		mk(2, 20*sim.Second, nil),
		// Turn 2 re-sends the prefix: hits must be reloaded from DRAM.
		mk(3, 40*sim.Second, chain),
	}
	reqs[1].PromptTokens = 1200
	for _, r := range reqs {
		r := r
		engine.AtPriority(r.Arrival, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
			rep.Submit(r)
		}))
	}
	engine.Run()
	for _, r := range reqs {
		if r.Phase() != request.Done {
			t.Fatalf("request %d stuck in %v", r.ID, r.Phase())
		}
	}
	if rep.KV().Demotions() == 0 {
		t.Fatal("no demotions despite cache pressure")
	}
	if rep.PrefixHitTokens() == 0 {
		t.Fatal("reloaded prefix counted no hits")
	}
	if rep.ReloadTime() == 0 {
		t.Fatal("DRAM reload charged no time")
	}
	if err := rep.ConfigureKV(kvcache.Config{CapacityTokens: 4096}); err == nil {
		t.Error("ConfigureKV accepted reconfiguration after serving")
	}
}

// PublishIndex exports membership into a global index only when it
// changed, and AddTransferDebt serializes imported-KV time into the next
// iteration exactly like a DRAM reload.
func TestPublishIndexAndTransferDebt(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	engine := sim.NewEngine()
	rep, err := New(engine, mc, sched.NewSarathi(sched.FCFS, 256))
	if err != nil {
		t.Fatal(err)
	}
	idx := kvcache.NewGlobalIndex(1)
	rep.PublishIndex(idx, 0)
	if e := idx.Epoch(0); e != 1 {
		t.Fatalf("epoch %d after initial publish, want 1", e)
	}
	rep.PublishIndex(idx, 0) // membership unchanged: must not republish
	if e := idx.Epoch(0); e != 1 {
		t.Fatalf("quiescent republish bumped epoch to %d", e)
	}

	chain := kvcache.SyntheticChain(11, 0, kvcache.ChainBlocks(800, 16))
	req := &request.Request{
		ID: 1, App: "Q1", Class: qos.Table3()[0],
		PromptTokens: 800, DecodeTokens: 4, PrefixHashes: chain,
	}
	engine.AtPriority(0, -1, sim.EventFunc(func(_ *sim.Engine, _ sim.Time) {
		rep.Submit(req)
	}))
	engine.Run()
	rep.PublishIndex(idx, 0)
	if e := idx.Epoch(0); e != 2 {
		t.Fatalf("epoch %d after caching a chain, want 2", e)
	}
	if got := idx.MatchTokens(0, chain); got != len(chain)*16 {
		t.Fatalf("published index matches %d tokens, want %d", got, len(chain)*16)
	}

	// Transfer debt lands on the next iteration's wall time.
	debt := 5 * sim.Millisecond
	before := rep.busyTime
	rep.AddTransferDebt(debt)
	rep.AddTransferDebt(-debt) // ignored
	if rep.TransferTime() != debt {
		t.Fatalf("transfer time %v, want %v", rep.TransferTime(), debt)
	}
	if rep.pendingReload != debt {
		t.Fatalf("pending debt %v, want %v", rep.pendingReload, debt)
	}
	req2 := &request.Request{
		ID: 2, App: "Q1", Class: qos.Table3()[0],
		Arrival: engine.Now(), PromptTokens: 64, DecodeTokens: 2,
	}
	rep.Submit(req2)
	engine.Run()
	if req2.Phase() != request.Done {
		t.Fatalf("request 2 stuck in %v", req2.Phase())
	}
	if rep.pendingReload != 0 {
		t.Fatalf("transfer debt %v never charged", rep.pendingReload)
	}
	if got := rep.busyTime - before; got < debt {
		t.Fatalf("busy time grew %v, want at least the %v transfer debt", got, debt)
	}

	// Restart force-republishes the (now empty) membership.
	rep.Fail()
	if err := rep.Restart(sched.NewSarathi(sched.FCFS, 256)); err != nil {
		t.Fatal(err)
	}
	rep.PublishIndex(idx, 0)
	if e := idx.Epoch(0); e != 3 {
		t.Fatalf("epoch %d after restart republish, want 3", e)
	}
	if got := idx.MatchTokens(0, chain); got != 0 {
		t.Fatalf("restarted replica still advertises %d tokens", got)
	}
}
