package replica

import (
	"strings"
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

func TestLoadSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	snaps := []LoadSnapshot{
		{},
		{QueuedRequests: 1, PendingPrefillTokens: 1},
		{QueuedRequests: 3, PendingPrefillTokens: 9000, ChunkBudgetTokens: 512},
		{ActiveDecodes: 1, SumDecodeCtx: 128, MaxDecodeCtx: 128},
		{QueuedRequests: 2, PendingPrefillTokens: 4096,
			ActiveDecodes: 7, SumDecodeCtx: 3500, MaxDecodeCtx: 900,
			ChunkBudgetTokens: 256},
	}
	for _, s := range snaps {
		if err := s.Validate(); err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		wire := s.Encode()
		got, err := DecodeLoadSnapshot(wire)
		if err != nil {
			t.Fatalf("decode %q: %v", wire, err)
		}
		if got != s {
			t.Fatalf("round trip %q: got %+v, want %+v", wire, got, s)
		}
	}
}

func TestLoadSnapshotDecodeRejectsMalformed(t *testing.T) {
	bad := []string{
		"",                         // no version
		"v1",                       // no body
		"v2:0,0,0,0,0,0",           // unknown version
		"v1:0,0,0,0,0",             // too few fields
		"v1:0,0,0,0,0,0,0",        // too many fields
		"v1:-1,0,0,0,0,0",         // negative
		"v1:+1,1,0,0,0,0",         // non-canonical sign
		"v1:01,1,0,0,0,0",         // leading zero
		"v1: 1,1,0,0,0,0",         // whitespace
		"v1:a,0,0,0,0,0",          // not a number
		"v1:0,5,0,0,0,0",          // prefill tokens without queued requests
		"v1:5,3,0,0,0,0",          // fewer pending tokens than queued requests
		"v1:0,0,0,7,0,0",          // decode ctx without decodes
		"v1:0,0,2,0,0,0",          // decodes with zero max ctx
		"v1:0,0,2,5,9,0",          // sum below max
		"v1:0,0,2,100,10,0",       // sum above decodes*max
		"v1:0,0,0,0,0,1099511627777", // beyond maxSnapshotValue
		"v1:0,0,0,0,0,99999999999999999999", // int64 overflow
	}
	for _, wire := range bad {
		if _, err := DecodeLoadSnapshot(wire); err == nil {
			t.Errorf("decode %q: expected error", wire)
		}
	}
}

func TestReplicaSnapshotTracksQueueState(t *testing.T) {
	engine := sim.NewEngine()
	rep, err := New(engine, model.Llama3_8B_A100_TP1(), sched.NewSarathi(sched.FCFS, 256))
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Snapshot(); s != (LoadSnapshot{}) {
		t.Fatalf("idle snapshot %+v, want zero", s)
	}

	long := &request.Request{ID: 1, App: "Q3", Class: qos.Table3()[2], PromptTokens: 2048, DecodeTokens: 64}
	short := &request.Request{ID: 2, App: "Q3", Class: qos.Table3()[2], PromptTokens: 100, DecodeTokens: 8}
	rep.Submit(long)
	rep.Submit(short)

	s := rep.Snapshot()
	if s.QueuedRequests != 2 || s.PendingPrefillTokens != 2148 {
		t.Fatalf("pre-run snapshot %+v, want 2 queued / 2148 pending", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	// Run to completion: the backlog drains, decode state rises and falls,
	// and every intermediate snapshot stays internally consistent.
	for engine.Step() {
		if err := rep.Snapshot().Validate(); err != nil {
			t.Fatal(err)
		}
	}
	s = rep.Snapshot()
	if s.QueuedRequests != 0 || s.PendingPrefillTokens != 0 || s.ActiveDecodes != 0 {
		t.Fatalf("drained snapshot %+v, want no queued or active work", s)
	}
	// The last prefill-carrying batch may be a partial tail chunk, so the
	// recorded budget is bounded by the sarathi chunk, not equal to it.
	if s.ChunkBudgetTokens <= 0 || s.ChunkBudgetTokens > 256 {
		t.Fatalf("chunk budget %d, want in (0,256]", s.ChunkBudgetTokens)
	}
}

func FuzzLoadSnapshotDecode(f *testing.F) {
	f.Add("v1:0,0,0,0,0,0")
	f.Add("v1:2,4096,7,3500,900,256")
	f.Add("v1:1,1,1,1,1,8192")
	f.Add("v2:0,0,0,0,0,0")
	f.Add("v1:-3,,+9,01,999999999999999999999,5")
	f.Add("v1:0,0,2,100,10,0")
	f.Fuzz(func(t *testing.T, wire string) {
		s, err := DecodeLoadSnapshot(wire)
		if err != nil {
			return
		}
		// Anything the decoder accepts must satisfy the invariants and
		// round-trip canonically: decode(encode(decode(w))) == decode(w)
		// and encode(decode(w)) == w (canonical spellings only).
		if verr := s.Validate(); verr != nil {
			t.Fatalf("decoded %q to invalid snapshot %+v: %v", wire, s, verr)
		}
		re := s.Encode()
		if re != wire {
			t.Fatalf("decode %q re-encodes as %q; accepted a non-canonical form", wire, re)
		}
		again, err := DecodeLoadSnapshot(re)
		if err != nil {
			t.Fatalf("re-decode %q: %v", re, err)
		}
		if again != s {
			t.Fatalf("round trip diverged: %+v vs %+v", s, again)
		}
		if strings.Count(wire, ",") != 5 {
			t.Fatalf("accepted %q with %d commas", wire, strings.Count(wire, ","))
		}
	})
}
