// Package replica implements one serving replica: the iteration loop that
// asks a scheduler for a batch, prices it with the ground-truth cost model,
// advances the virtual clock, performs token accounting, and manages the
// paged KV cache (admission control and recompute-preemption under memory
// pressure).
package replica

import (
	"fmt"

	"qoserve/internal/kvcache"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// Replica couples a scheduler with hardware. Create with New and feed it
// arrivals via Submit; it runs itself on the shared sim engine.
type Replica struct {
	cfg    model.Config
	sch    sched.Scheduler
	kv     *kvcache.Manager
	engine *sim.Engine

	busy bool

	// Stats.
	iterations uint64
	tokens     uint64
	busyTime   sim.Time
	kvDeferred uint64
	rejected   uint64
	served     []*request.Request
}

// New builds a replica. The KV cache is sized from the model/hardware
// configuration.
func New(engine *sim.Engine, cfg model.Config, sch sched.Scheduler) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kv, err := kvcache.NewManager(cfg.KVCapacityTokens(), kvcache.DefaultBlockTokens)
	if err != nil {
		return nil, err
	}
	return &Replica{cfg: cfg, sch: sch, kv: kv, engine: engine}, nil
}

// Scheduler returns the replica's scheduler.
func (r *Replica) Scheduler() sched.Scheduler { return r.sch }

// Submit hands a request to the replica at the current virtual time.
// A request whose final context cannot fit the KV cache at all is
// unserveable on this replica: it is rejected immediately (counted, and
// left unserved so metrics report it as a violation) rather than letting
// its admission retry forever.
func (r *Replica) Submit(req *request.Request) {
	now := r.engine.Now()
	r.served = append(r.served, req)
	if req.TotalTokens() > r.kv.CapacityTokens() {
		r.rejected++
		return
	}
	r.sch.Add(req, now)
	if !r.busy {
		r.startIteration(now)
	}
}

// Rejected counts requests refused at submit because their full context
// exceeds the replica's KV capacity.
func (r *Replica) Rejected() uint64 { return r.rejected }

// Served returns every request this replica has accepted.
func (r *Replica) Served() []*request.Request { return r.served }

// Iterations is the number of executed batches.
func (r *Replica) Iterations() uint64 { return r.iterations }

// TokensProcessed is the total new tokens executed.
func (r *Replica) TokensProcessed() uint64 { return r.tokens }

// Utilization is the fraction of virtual time the replica spent executing.
func (r *Replica) Utilization() float64 {
	if now := r.engine.Now(); now > 0 {
		return r.busyTime.Seconds() / now.Seconds()
	}
	return 0
}

// KVDeferrals counts prefill admissions deferred by KV pressure.
func (r *Replica) KVDeferrals() uint64 { return r.kvDeferred }

// KV exposes the cache manager for inspection.
func (r *Replica) KV() *kvcache.Manager { return r.kv }

// startIteration plans and launches one batch; the replica idles if the
// scheduler has nothing to run.
func (r *Replica) startIteration(now sim.Time) {
	batch := r.sch.PlanBatch(now)
	planned := !batch.Empty()
	batch = r.admit(batch)
	if batch.Empty() {
		if planned {
			// KV admission deferred everything; retry shortly rather
			// than stalling until the next arrival.
			r.busy = true
			r.engine.After(10*sim.Millisecond, sim.EventFunc(func(_ *sim.Engine, t sim.Time) {
				r.startIteration(t)
			}))
			return
		}
		r.busy = false
		return
	}
	r.busy = true
	execTime := r.cfg.BatchTime(batch.Shape())
	if execTime <= 0 {
		panic(fmt.Sprintf("replica: non-positive batch time %v for %v", execTime, batch))
	}
	r.engine.At(now+execTime, sim.EventFunc(func(_ *sim.Engine, end sim.Time) {
		r.completeIteration(batch, now, end)
	}))
}

// admit enforces KV capacity. A request's full final context (prompt plus
// every decode token) is reserved when its first chunk is admitted, so
// decode-phase requests can never be starved of cache mid-flight — memory
// pressure instead manifests as deferred prefill admissions, which the
// scheduler experiences as queue backlog, mirroring vLLM's watermark
// admission.
func (r *Replica) admit(b sched.Batch) sched.Batch {
	// Decode growth is covered by the reservation made at admission; a
	// failure here means the reservation invariant was broken.
	for _, d := range b.Decodes {
		if !r.kv.Grow(d.ID, d.ContextLen()+1) {
			panic(fmt.Sprintf("replica: request %d decode outgrew its KV reservation", d.ID))
		}
	}
	// Admit prefill chunks: the first chunk reserves the full final
	// context. Admission is strictly in batch (priority) order: once a
	// new request's reservation fails, no new request behind it is
	// admitted this iteration — otherwise small requests would slip past
	// a large one indefinitely and starve it of cache. Requests that
	// already hold a reservation (partials) always proceed.
	kept := b.Prefill[:0]
	blocked := false
	for _, p := range b.Prefill {
		isNew := p.Req.PrefilledTokens == 0
		if blocked && isNew {
			r.kvDeferred++
			continue
		}
		if r.kv.Grow(p.Req.ID, p.Req.TotalTokens()) {
			kept = append(kept, p)
		} else {
			r.kvDeferred++
			blocked = true
		}
	}
	b.Prefill = kept
	return b
}

// completeIteration performs token accounting and schedules the next batch.
func (r *Replica) completeIteration(b sched.Batch, started, now sim.Time) {
	r.iterations++
	r.tokens += uint64(b.NewTokens())
	r.busyTime += now - started

	for _, p := range b.Prefill {
		p.Req.RecordPrefill(p.Tokens, now)
	}
	for _, d := range b.Decodes {
		d.RecordDecodeToken(now)
	}
	// Release the KV of everything that finished.
	for _, p := range b.Prefill {
		if p.Req.Phase() == request.Done {
			r.kv.Release(p.Req.ID)
		}
	}
	for _, d := range b.Decodes {
		if d.Phase() == request.Done {
			r.kv.Release(d.ID)
		}
	}
	r.sch.OnBatchComplete(b, now)
	r.startIteration(now)
}

// Kick restarts the iteration loop if the replica is idle but the scheduler
// has pending work (used after out-of-band state changes, e.g. in tests).
func (r *Replica) Kick() {
	if !r.busy && r.sch.Pending() > 0 {
		r.startIteration(r.engine.Now())
	}
}
