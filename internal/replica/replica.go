// Package replica implements one serving replica: the iteration loop that
// asks a scheduler for a batch, prices it with the ground-truth cost model,
// advances the virtual clock, performs token accounting, and manages the
// paged KV cache (admission control and recompute-preemption under memory
// pressure).
package replica

import (
	"fmt"

	"qoserve/internal/kvcache"
	"qoserve/internal/model"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// Replica couples a scheduler with hardware. Create with New and feed it
// arrivals via Submit; it runs itself on the shared sim engine.
//
// A replica can fail and recover: Fail models a crash (all in-flight work
// and KV state is lost; the orphaned requests are returned to the caller
// for re-dispatch), Restart returns it to service with a fresh scheduler
// and an empty KV cache, and SetSlowFactor degrades its execution speed
// (a straggler GPU). The cluster layer drives these through fault
// injection and owns the re-enqueue policy.
type Replica struct {
	cfg    model.Config
	sch    sched.Scheduler
	kv     *kvcache.Manager
	kvCfg  *kvcache.Config // non-nil once ConfigureKV tiered the cache
	engine *sim.Engine

	busy bool
	down bool
	slow float64 // execution-time multiplier; 0 or 1 means nominal

	// pendingReload is DRAM->HBM transfer time owed by prefix promotions
	// (and cross-replica KV imports, see AddTransferDebt) since the last
	// iteration; charged onto the next batch's exec time.
	pendingReload sim.Time

	// idxPublished is the kv membership version last exported via
	// PublishIndex; ^0 forces a republish after Restart swaps the cache.
	idxPublished uint64

	// pending is the in-flight iteration-completion (or KV-retry) event,
	// cancelled on Fail so a dead replica never finishes work.
	pending sim.Handle

	// active holds accepted requests in submission order, so a crash can
	// orphan them deterministically. Finished requests are removed lazily:
	// activeDone counts Done entries still present, and the slice is
	// compacted only once they outweigh the live ones, so completion-heavy
	// phases pay amortized O(1) per finish instead of an O(active) rescan
	// every iteration. Readers (Fail) must skip Done entries.
	active     []*request.Request
	activeDone int

	// lastChunk is the prefill-token budget of the most recent batch that
	// carried any prefill — the chunk granularity LoadSnapshot reports.
	lastChunk int

	// Iteration-scoped scratch: at most one iteration is in flight per
	// replica, so the completion/retry events and the shape buffer are
	// reused instead of allocated per iteration.
	done  iterDone
	retry kvRetry
	shape model.BatchShape

	// Stats.
	iterations uint64
	tokens     uint64
	busyTime   sim.Time
	kvDeferred uint64
	rejected   uint64
	crashes    uint64
	restarts   uint64
	prefixHit    uint64   // prompt tokens credited from the prefix cache
	reloadTime   sim.Time // total DRAM->HBM transfer time charged
	transferTime sim.Time // total cross-replica KV transfer time charged
	served       []*request.Request
}

// New builds a replica. The KV cache is sized from the model/hardware
// configuration.
func New(engine *sim.Engine, cfg model.Config, sch sched.Scheduler) (*Replica, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	kv, err := kvcache.NewManager(cfg.KVCapacityTokens(), kvcache.DefaultBlockTokens)
	if err != nil {
		return nil, err
	}
	// idxPublished starts at the sentinel so a first PublishIndex always
	// exports, even though the fresh cache sits at membership version 0.
	return &Replica{cfg: cfg, sch: sch, kv: kv, engine: engine, idxPublished: ^uint64(0)}, nil
}

// Scheduler returns the replica's scheduler.
func (r *Replica) Scheduler() sched.Scheduler { return r.sch }

// ConfigureKV replaces the replica's KV manager with a tiered prefix cache
// built from cfg. Zero CapacityTokens keeps the hardware-derived size. The
// configuration is sticky: Restart rebuilds the cache with the same tiers.
// It must be called before any request is submitted.
func (r *Replica) ConfigureKV(cfg kvcache.Config) error {
	if len(r.served) > 0 {
		return fmt.Errorf("replica: ConfigureKV after requests were submitted")
	}
	if cfg.CapacityTokens == 0 {
		cfg.CapacityTokens = r.cfg.KVCapacityTokens()
	}
	kv, err := kvcache.NewTiered(cfg)
	if err != nil {
		return err
	}
	r.kv, r.kvCfg = kv, &cfg
	return nil
}

// Submit hands a request to the replica at the current virtual time.
// A request whose final context cannot fit the KV cache at all is
// unserveable on this replica: it is rejected immediately (counted, and
// left unserved so metrics report it as a violation) rather than letting
// its admission retry forever.
func (r *Replica) Submit(req *request.Request) {
	if r.down {
		panic(fmt.Sprintf("replica: submit request %d to down replica", req.ID))
	}
	now := r.engine.Now()
	r.served = append(r.served, req)
	if req.TotalTokens() > r.kv.CapacityTokens() {
		r.rejected++
		return
	}
	r.active = append(r.active, req)
	if len(req.PrefixHashes) > 0 && req.PrefilledTokens == req.PrefixHitTokens {
		// Pin the shared prefix before the scheduler sees the request:
		// matched blocks skip prefill (the chunk planners just observe
		// less remaining work), and DRAM-resident matches owe transfer
		// time, charged onto the next iteration this replica runs.
		res := r.kv.AcquirePrefix(req.ID, req.PrefixHashes)
		req.ApplyPrefixHit(res.HitTokens)
		r.prefixHit += uint64(res.HitTokens)
		if res.ReloadTokens > 0 {
			reload := sim.FromSeconds(r.kv.ReloadSeconds(res.ReloadTokens))
			r.pendingReload += reload
			r.reloadTime += reload
		}
	}
	r.sch.Add(req, now)
	if !r.busy {
		r.startIteration(now)
	}
}

// Rejected counts requests refused at submit because their full context
// exceeds the replica's KV capacity.
func (r *Replica) Rejected() uint64 { return r.rejected }

// Served returns every request this replica has accepted.
func (r *Replica) Served() []*request.Request { return r.served }

// Iterations is the number of executed batches.
func (r *Replica) Iterations() uint64 { return r.iterations }

// TokensProcessed is the total new tokens executed.
func (r *Replica) TokensProcessed() uint64 { return r.tokens }

// Utilization is the fraction of virtual time the replica spent executing.
func (r *Replica) Utilization() float64 {
	if now := r.engine.Now(); now > 0 {
		return r.busyTime.Seconds() / now.Seconds()
	}
	return 0
}

// KVDeferrals counts prefill admissions deferred by KV pressure.
func (r *Replica) KVDeferrals() uint64 { return r.kvDeferred }

// PrefixHitTokens is the total prompt tokens this replica served from its
// prefix cache instead of prefilling. Unlike the manager's counter it
// survives Restart (which rebuilds the cache).
func (r *Replica) PrefixHitTokens() uint64 { return r.prefixHit }

// ReloadTime is the total DRAM->HBM transfer time charged for warm-prefix
// promotions.
func (r *Replica) ReloadTime() sim.Time { return r.reloadTime }

// KV exposes the cache manager for inspection.
func (r *Replica) KV() *kvcache.Manager { return r.kv }

// Healthy reports whether the replica is up and serving.
func (r *Replica) Healthy() bool { return !r.down }

// Crashes counts Fail calls; Restarts counts successful Restart calls.
func (r *Replica) Crashes() uint64  { return r.crashes }
func (r *Replica) Restarts() uint64 { return r.restarts }

// SlowFactor is the current execution-time multiplier (1 when nominal).
func (r *Replica) SlowFactor() float64 {
	if r.slow <= 0 {
		return 1
	}
	return r.slow
}

// SetSlowFactor degrades (factor > 1) or restores (factor <= 1) the
// replica's execution speed; subsequent iterations take factor times the
// cost model's batch time. This models a straggler GPU — thermal
// throttling, a noisy neighbour, a failing link — without taking the
// replica out of service.
func (r *Replica) SetSlowFactor(factor float64) {
	if factor <= 1 {
		r.slow = 1
		return
	}
	r.slow = factor
}

// Fail crashes the replica: the in-flight iteration (if any) is cancelled,
// every KV allocation is dropped, and the accepted-but-unfinished requests
// are returned — in submission order — with their execution state intact so
// the caller can account lost progress before re-dispatching them. The
// replica refuses new work until Restart. Returning the orphans hands the
// tracking obligation back to the caller, which must recover or fail each
// one.
//
//qoserve:outcome handoff
func (r *Replica) Fail() []*request.Request {
	if r.down {
		return nil
	}
	r.down = true
	r.crashes++
	r.busy = false
	r.lastChunk = 0
	if r.pending.Valid() {
		r.engine.Cancel(r.pending)
		r.pending = sim.Handle{}
	}
	orphans := r.active
	r.active = nil
	if r.activeDone > 0 {
		// Drop lazily-retained finished entries; live orphans keep their
		// submission order.
		kept := orphans[:0]
		for _, req := range orphans {
			if req.Phase() != request.Done {
				kept = append(kept, req)
			}
		}
		orphans = kept
		r.activeDone = 0
	}
	for _, req := range orphans {
		r.kv.Release(req.ID)
	}
	return orphans
}

// Restart returns a failed replica to service with a fresh scheduler and an
// empty KV cache. Cumulative statistics (iterations, tokens, busy time)
// survive the restart; in-flight state does not, by construction — Fail
// already orphaned it.
func (r *Replica) Restart(sch sched.Scheduler) error {
	if !r.down {
		return fmt.Errorf("replica: restart while still up")
	}
	if sch == nil {
		return fmt.Errorf("replica: restart with nil scheduler")
	}
	kvCfg := kvcache.Config{CapacityTokens: r.cfg.KVCapacityTokens()}
	if r.kvCfg != nil {
		kvCfg = *r.kvCfg
	}
	kv, err := kvcache.NewTiered(kvCfg)
	if err != nil {
		return err
	}
	r.sch, r.kv = sch, kv
	r.down = false
	r.pendingReload = 0
	// The fresh cache starts at version 0 like the old one did; force the
	// next PublishIndex to export the (now empty) membership regardless.
	r.idxPublished = ^uint64(0)
	r.restarts++
	return nil
}

// AddTransferDebt charges modeled interconnect time for KV blocks
// imported from a peer replica. Like DRAM reload debt it serializes with
// the next iteration's execution — the conservative (non-overlapped)
// transfer model.
func (r *Replica) AddTransferDebt(d sim.Time) {
	if d <= 0 {
		return
	}
	r.pendingReload += d
	r.transferTime += d
}

// TransferTime is the total cross-replica KV transfer time charged so far.
func (r *Replica) TransferTime() sim.Time { return r.transferTime }

// PublishIndex exports the replica's prefix-cache block membership into
// slot of the global index, skipping the export entirely when membership
// has not changed since the last publish (warm steady state).
func (r *Replica) PublishIndex(g *kvcache.GlobalIndex, slot int) {
	if v := r.kv.IndexVersion(); v != r.idxPublished {
		g.Publish(slot, r.kv.ExportIndex())
		r.idxPublished = v
	}
}

// startIteration plans and launches one batch; the replica idles if the
// scheduler has nothing to run.
func (r *Replica) startIteration(now sim.Time) {
	if r.down {
		return
	}
	batch := r.sch.PlanBatch(now)
	planned := !batch.Empty()
	batch = r.admit(batch)
	if batch.Empty() {
		if planned {
			// KV admission deferred everything; retry shortly rather
			// than stalling until the next arrival.
			r.busy = true
			r.retry.r = r
			r.pending = r.engine.After(10*sim.Millisecond, &r.retry)
			return
		}
		r.busy = false
		return
	}
	r.busy = true
	batch.ShapeInto(&r.shape)
	execTime := r.cfg.BatchTime(r.shape)
	if execTime <= 0 {
		panic(fmt.Sprintf("replica: non-positive batch time %v for %v", execTime, batch))
	}
	if r.slow > 1 {
		execTime = sim.Time(float64(execTime) * r.slow)
	}
	if r.pendingReload > 0 {
		// Warm prefixes promoted from DRAM since the last iteration pay
		// their transfer here, serializing with compute — the conservative
		// (non-overlapped) model.
		execTime += r.pendingReload
		r.pendingReload = 0
	}
	r.done = iterDone{r: r, batch: batch, started: now}
	r.pending = r.engine.At(now+execTime, &r.done)
}

// iterDone is the reusable iteration-completion event; exactly one is in
// flight per replica, cancelled on Fail before any reuse.
type iterDone struct {
	r       *Replica
	batch   sched.Batch
	started sim.Time
}

// Fire completes the iteration at its scheduled end time.
func (e *iterDone) Fire(_ *sim.Engine, end sim.Time) {
	e.r.completeIteration(e.batch, e.started, end)
}

// kvRetry is the reusable KV-admission retry event.
type kvRetry struct{ r *Replica }

// Fire re-attempts planning after a full KV deferral.
func (e *kvRetry) Fire(_ *sim.Engine, t sim.Time) { e.r.startIteration(t) }

// admit enforces KV capacity. A request's full final context (prompt plus
// every decode token) is reserved when its first chunk is admitted, so
// decode-phase requests can never be starved of cache mid-flight — memory
// pressure instead manifests as deferred prefill admissions, which the
// scheduler experiences as queue backlog, mirroring vLLM's watermark
// admission.
func (r *Replica) admit(b sched.Batch) sched.Batch {
	// Decode growth is covered by the reservation made at admission; a
	// failure here means the reservation invariant was broken.
	for _, d := range b.Decodes {
		if !r.kv.Grow(d.ID, d.ContextLen()+1) {
			panic(fmt.Sprintf("replica: request %d decode outgrew its KV reservation", d.ID))
		}
	}
	// Admit prefill chunks: the first chunk reserves the full final
	// context. Admission is strictly in batch (priority) order: once a
	// new request's reservation fails, no new request behind it is
	// admitted this iteration — otherwise small requests would slip past
	// a large one indefinitely and starve it of cache. Requests that
	// already hold a reservation (partials) always proceed.
	kept := b.Prefill[:0]
	blocked := false
	for _, p := range b.Prefill {
		// A request is "new" until its first real prefill chunk runs; a
		// prefix-cache credit alone (PrefilledTokens == PrefixHitTokens)
		// does not let it jump the blocked-ordering queue.
		isNew := p.Req.PrefilledTokens == p.Req.PrefixHitTokens
		if blocked && isNew {
			r.kvDeferred++
			continue
		}
		if r.kv.Grow(p.Req.ID, p.Req.TotalTokens()) {
			kept = append(kept, p)
		} else {
			r.kvDeferred++
			blocked = true
		}
	}
	b.Prefill = kept
	return b
}

// completeIteration performs token accounting and schedules the next batch.
func (r *Replica) completeIteration(b sched.Batch, started, now sim.Time) {
	r.pending = sim.Handle{}
	r.iterations++
	r.tokens += uint64(b.NewTokens())
	r.busyTime += now - started
	if pt := b.PrefillTokens(); pt > 0 {
		r.lastChunk = pt
	}

	for _, p := range b.Prefill {
		p.Req.RecordPrefill(p.Tokens, now)
	}
	for _, d := range b.Decodes {
		d.RecordDecodeToken(now)
	}
	// Release the KV of everything that finished.
	for _, p := range b.Prefill {
		if p.Req.Phase() == request.Done {
			r.kv.Release(p.Req.ID)
			r.activeDone++
		}
	}
	for _, d := range b.Decodes {
		if d.Phase() == request.Done {
			r.kv.Release(d.ID)
			r.activeDone++
		}
	}
	// Compact lazily: a full rescan per finish is O(active) on every
	// iteration of a deep backlog, so defer it until Done entries
	// outweigh live ones (amortized O(1) per finished request).
	if r.activeDone*2 >= len(r.active) && r.activeDone > 0 {
		kept := r.active[:0]
		for _, req := range r.active {
			if req.Phase() != request.Done {
				kept = append(kept, req)
			}
		}
		clear(r.active[len(kept):])
		r.active = kept
		r.activeDone = 0
	}
	r.sch.OnBatchComplete(b, now)
	r.startIteration(now)
}

// Kick restarts the iteration loop if the replica is idle but the scheduler
// has pending work (used after out-of-band state changes, e.g. in tests).
func (r *Replica) Kick() {
	if !r.down && !r.busy && r.sch.Pending() > 0 {
		r.startIteration(r.engine.Now())
	}
}
