package estimate

import (
	"math"
	"math/rand"
	"testing"
)

func TestPriorBeforeHistory(t *testing.T) {
	tr := NewTracker()
	if got := tr.Estimate("chat"); got != 256 {
		t.Errorf("cold estimate = %d, want prior 256", got)
	}
	tr.Prior = 0
	if got := tr.Estimate("chat"); got != 1 {
		t.Errorf("degenerate prior estimate = %d, want 1", got)
	}
}

func TestGlobalFallback(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 20; i++ {
		tr.Observe("appA", 100)
	}
	// appB has no history; global has 20 samples of 100 with zero spread.
	if got := tr.Estimate("appB"); got != 100 {
		t.Errorf("global-fallback estimate = %d, want 100", got)
	}
}

func TestPerAppOverApproximation(t *testing.T) {
	tr := NewTracker()
	rng := rand.New(rand.NewSource(1))
	// App with mean 200, stddev ~50.
	var sum, sumSq float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := 200 + 50*rng.NormFloat64()
		if v < 1 {
			v = 1
		}
		tr.Observe("summarize", int(v))
		sum += math.Round(v)
		sumSq += math.Round(v) * math.Round(v)
	}
	mean := sum / n
	std := math.Sqrt((sumSq - sum*sum/n) / (n - 1))
	want := mean + 2*std
	got := float64(tr.Estimate("summarize"))
	if math.Abs(got-want) > 3 {
		t.Errorf("estimate = %v, want ~%v (mean+2sigma)", got, want)
	}
	// The estimate must cover the vast majority of actual lengths: check
	// over-approximation property empirically (~97.7% for a normal).
	covered := 0
	for i := 0; i < 1000; i++ {
		v := 200 + 50*rng.NormFloat64()
		if float64(tr.Estimate("summarize")) >= v {
			covered++
		}
	}
	if covered < 950 {
		t.Errorf("estimate covers only %d/1000 samples", covered)
	}
}

func TestSeparateApps(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 20; i++ {
		tr.Observe("short", 10)
		tr.Observe("long", 1000)
	}
	if s, l := tr.Estimate("short"), tr.Estimate("long"); s >= l {
		t.Errorf("short est %d >= long est %d", s, l)
	}
	if got := tr.Samples("short"); got != 20 {
		t.Errorf("samples = %d", got)
	}
	if got := tr.Samples("unknown"); got != 0 {
		t.Errorf("unknown samples = %d", got)
	}
}

func TestObserveIgnoresNonPositive(t *testing.T) {
	tr := NewTracker()
	tr.Observe("x", 0)
	tr.Observe("x", -5)
	if tr.Samples("x") != 0 {
		t.Error("non-positive observations recorded")
	}
}

func TestEstimateNeverBelowOne(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 20; i++ {
		tr.Observe("tiny", 1)
	}
	if got := tr.Estimate("tiny"); got < 1 {
		t.Errorf("estimate = %d < 1", got)
	}
}
