// Package estimate maintains per-application decode-length statistics.
//
// Decode length is unknown at scheduling time, which complicates modelling
// the priority of non-interactive requests (Section 3.4). The paper's
// insight: use historic per-application output lengths and over-approximate
// by two standard deviations. This package implements that tracker with
// Welford's online algorithm.
package estimate

import "math"

// stats is a Welford accumulator.
type stats struct {
	n    int
	mean float64
	m2   float64
}

func (s *stats) add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

func (s *stats) stddev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Tracker estimates decode lengths per application, falling back to global
// statistics (and then to a configurable prior) while an app's history is
// cold.
type Tracker struct {
	perApp map[string]*stats
	global stats
	// Prior is the estimate returned before any history exists.
	Prior int
	// Sigmas is the over-approximation factor; the paper uses 2.
	Sigmas float64
	// MinSamples is the history size below which the app falls back to
	// global statistics.
	MinSamples int
}

// NewTracker returns a tracker with the paper's defaults: 2-sigma
// over-approximation, prior of 256 tokens, 8 samples to trust an app.
func NewTracker() *Tracker {
	return &Tracker{
		perApp:     make(map[string]*stats),
		Prior:      256,
		Sigmas:     2,
		MinSamples: 8,
	}
}

// Observe records the actual decode length of a completed request.
func (t *Tracker) Observe(app string, decodeTokens int) {
	if decodeTokens <= 0 {
		return
	}
	s := t.perApp[app]
	if s == nil {
		s = &stats{}
		t.perApp[app] = s
	}
	s.add(float64(decodeTokens))
	t.global.add(float64(decodeTokens))
}

// Estimate returns the over-approximated decode length for a new request of
// the given application: mean + Sigmas*stddev of the app's history, falling
// back to global history, then the prior. The result is always >= 1.
func (t *Tracker) Estimate(app string) int {
	s := t.perApp[app]
	if s == nil || s.n < t.MinSamples {
		if t.global.n >= t.MinSamples {
			s = &t.global
		} else {
			if t.Prior < 1 {
				return 1
			}
			return t.Prior
		}
	}
	est := int(math.Ceil(s.mean + t.Sigmas*s.stddev()))
	if est < 1 {
		est = 1
	}
	return est
}

// Samples reports how many observations the app has.
func (t *Tracker) Samples(app string) int {
	if s := t.perApp[app]; s != nil {
		return s.n
	}
	return 0
}
