package predictor

import (
	"strings"
	"testing"

	"qoserve/internal/model"
)

// FuzzLoad ensures arbitrary bytes never panic the forest loader, and that
// any forest it accepts terminates on Predict (the structural validation
// must reject graphs that could loop).
func FuzzLoad(f *testing.F) {
	f.Add(`{"version":1,"margin":0.1,"trees":[{"nodes":[{"f":-1,"v":0.5}]}]}`)
	f.Add(`{"version":1,"margin":0.1,"trees":[{"nodes":[{"f":0,"t":100,"l":1,"r":2},{"f":-1,"v":1},{"f":-1,"v":2}]}]}`)
	f.Add(`{"version":1`)
	f.Add(`{"version":1,"margin":0.1,"trees":[{"nodes":[{"f":0,"l":0,"r":0}]}]}`)

	shape := model.BatchShape{
		Prefill:   []model.ChunkShape{{Tokens: 256, CtxStart: 100}},
		DecodeCtx: []int{500, 1000},
	}
	f.Fuzz(func(t *testing.T, data string) {
		forest, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted forests must predict without hanging or panicking.
		_ = forest.Predict(shape)
		_ = forest.PredictSafe(shape)
	})
}
