package predictor

import (
	"qoserve/internal/profile"
	"qoserve/internal/sim"
)

// Completion estimation for predicted-latency load balancing: given one
// replica's queue state (a replica.LoadSnapshot, passed field-wise to keep
// this package free of a replica dependency) and a candidate request's
// shape, estimate how long the replica would take to finish the request.
// The balancer scores every replica with this and routes to the minimum —
// llm-d's "predicted latency" placement, built on the same forest the
// dynamic chunker already trains.

// DefaultScoreChunk is the prefill chunk assumed for a replica that has
// not planned a prefill batch yet (no observed chunk budget).
const DefaultScoreChunk = 512

// EstimateCompletion predicts the completion latency of a request with
// promptTokens/decodeTokens on a replica whose queue currently holds
// pendingPrefillTokens of unprefilled prompt backlog, activeDecodes
// in-flight decodes summarized by sumDecodeCtx/maxDecodeCtx, and feeds
// prefill through chunks of chunkTokens (<= 0 means DefaultScoreChunk).
//
// The model is deliberately coarse — the score only needs to rank
// replicas, not forecast wall time:
//
//   - Prefill: the arriving prompt queues behind the existing backlog, so
//     pending = backlog + prompt tokens must flow through the replica's
//     chunk budget. Each chunk-sized iteration is priced by the forest
//     with the decode side held at its snapshot value and the prefill
//     context at the midpoint of the pending range (the representative
//     iteration of the drain), using the margin-inflated estimate the
//     scheduler itself plans with.
//   - Decode: the remaining decodeTokens-1 tokens are priced as decode-
//     only iterations with the request joined to the snapshot's decode
//     batch at its full prompt context (raw estimate, no margin — decode
//     pacing has no budget inversion to stay conservative for).
//
// Allocation-free: scoring runs on the gateway's submit path once per
// replica per request.
//
//qoserve:hotpath
func EstimateCompletion(p FeaturePredictor, pendingPrefillTokens, activeDecodes, sumDecodeCtx, maxDecodeCtx, chunkTokens, promptTokens, decodeTokens int) sim.Time {
	return EstimateCompletionPrefix(p, pendingPrefillTokens, activeDecodes, sumDecodeCtx, maxDecodeCtx, chunkTokens, promptTokens, decodeTokens, 0, 0)
}

// EstimateCompletionPrefix is EstimateCompletion with prefix-cache credit:
// hitTokens of the prompt are already cached on (or being migrated to) the
// scored replica and skip prefill, and transfer is modeled interconnect
// time (cross-replica KV migration) serialized ahead of the request's
// first iteration. The decode side still prices the full prompt context —
// cached KV occupies the batch no matter how it got there. hitTokens is
// clamped to promptTokens-1: the last prompt token is always computed
// (it produces the first output logits).
//
//qoserve:hotpath
func EstimateCompletionPrefix(p FeaturePredictor, pendingPrefillTokens, activeDecodes, sumDecodeCtx, maxDecodeCtx, chunkTokens, promptTokens, decodeTokens, hitTokens int, transfer sim.Time) sim.Time {
	if promptTokens < 1 {
		promptTokens = 1
	}
	if decodeTokens < 1 {
		decodeTokens = 1
	}
	if pendingPrefillTokens < 0 {
		pendingPrefillTokens = 0
	}
	if hitTokens < 0 {
		hitTokens = 0
	}
	if hitTokens > promptTokens-1 {
		hitTokens = promptTokens - 1
	}
	if transfer < 0 {
		transfer = 0
	}
	pending := pendingPrefillTokens + promptTokens - hitTokens
	chunk := chunkTokens
	if chunk <= 0 {
		chunk = DefaultScoreChunk
	}
	if chunk > pending {
		chunk = pending
	}
	iters := (pending + chunk - 1) / chunk

	var x [profile.FeatureCount]float64
	x[profile.FeatChunkTokens] = float64(chunk)
	x[profile.FeatPrefillCtx] = float64(pending / 2)
	x[profile.FeatNumDecodes] = float64(activeDecodes)
	x[profile.FeatSumDecodeCtx] = float64(sumDecodeCtx)
	x[profile.FeatMaxDecodeCtx] = float64(maxDecodeCtx)
	est := p.PredictSafeFeats(x) * sim.Time(iters)

	if decodeTokens > 1 {
		x[profile.FeatChunkTokens] = 0
		x[profile.FeatPrefillCtx] = 0
		x[profile.FeatNumDecodes] = float64(activeDecodes + 1)
		x[profile.FeatSumDecodeCtx] = float64(sumDecodeCtx + promptTokens)
		if promptTokens > maxDecodeCtx {
			x[profile.FeatMaxDecodeCtx] = float64(promptTokens)
		}
		est += p.PredictFeats(x) * sim.Time(decodeTokens-1)
	}
	return est + transfer
}
