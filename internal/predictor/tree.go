// Package predictor implements the dynamic-chunking batch-latency predictor
// of Section 3.6.1: a bagged random forest of CART regression trees trained
// on profiled latency samples, plus the inverse query GET_PREFILL_BUDGET
// (Algorithm 1) that finds the largest chunk fitting a latency budget.
//
// The paper tunes the model "to err on the side of under-predicting chunk
// size": we implement this as a multiplicative safety margin applied to
// predicted latencies before the budget comparison, so the chosen chunk is
// conservative and TBT targets are never blown by prediction error.
package predictor

import (
	"fmt"
	"math"
	"sort"

	"qoserve/internal/profile"
)

// treeNode is one node of a CART regression tree stored in a flat slice.
type treeNode struct {
	feature   int     // split feature; -1 for leaf
	threshold float64 // go left if x[feature] <= threshold
	left      int32   // child indices into the node slice
	right     int32
	value     float64 // leaf prediction (mean of targets)
}

// Tree is a CART regression tree.
type Tree struct {
	nodes []treeNode
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	MaxDepth      int // default 12
	MinLeaf       int // minimum samples per leaf, default 4
	FeatureSubset int // features considered per split; 0 means all
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	if c.MinLeaf == 0 {
		c.MinLeaf = 4
	}
	return c
}

// trainSet is a column-oriented view of samples for efficient splitting.
type trainSet struct {
	feats   [][profile.FeatureCount]float64
	targets []float64
}

// FitTree grows a regression tree on the given sample indices. rng-like
// feature subsetting is driven by the caller via cfg.FeatureSubset and
// featOrder; passing nil featOrder uses all features.
func FitTree(samples []profile.Sample, idx []int, cfg TreeConfig, featPick func(n int) []int) *Tree {
	cfg = cfg.withDefaults()
	ts := trainSet{
		feats:   make([][profile.FeatureCount]float64, len(samples)),
		targets: make([]float64, len(samples)),
	}
	for i, s := range samples {
		ts.feats[i] = s.Features
		ts.targets[i] = s.Latency
	}
	if idx == nil {
		idx = make([]int, len(samples))
		for i := range idx {
			idx[i] = i
		}
	}
	t := &Tree{}
	t.grow(ts, idx, 0, cfg, featPick)
	return t
}

// grow recursively builds the subtree over idx and returns its node index.
func (t *Tree) grow(ts trainSet, idx []int, depth int, cfg TreeConfig, featPick func(n int) []int) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, treeNode{feature: -1, value: mean(ts.targets, idx)})

	if depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf || constantTargets(ts.targets, idx) {
		return self
	}

	feats := allFeatures()
	if featPick != nil && cfg.FeatureSubset > 0 && cfg.FeatureSubset < profile.FeatureCount {
		feats = featPick(cfg.FeatureSubset)
	}

	bestFeat, bestThresh, bestGain := -1, 0.0, 0.0
	for _, f := range feats {
		thresh, gain, ok := bestSplit(ts, idx, f, cfg.MinLeaf)
		if ok && gain > bestGain {
			bestFeat, bestThresh, bestGain = f, thresh, gain
		}
	}
	if bestFeat < 0 {
		return self
	}

	var left, right []int
	for _, i := range idx {
		if ts.feats[i][bestFeat] <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < cfg.MinLeaf || len(right) < cfg.MinLeaf {
		return self
	}

	l := t.grow(ts, left, depth+1, cfg, featPick)
	r := t.grow(ts, right, depth+1, cfg, featPick)
	t.nodes[self] = treeNode{feature: bestFeat, threshold: bestThresh, left: l, right: r}
	return self
}

// bestSplit finds the threshold for feature f maximizing SSE reduction,
// using the incremental sum trick over the sorted column.
func bestSplit(ts trainSet, idx []int, f, minLeaf int) (thresh, gain float64, ok bool) {
	order := make([]int, len(idx))
	copy(order, idx)
	sort.Slice(order, func(a, b int) bool {
		return ts.feats[order[a]][f] < ts.feats[order[b]][f]
	})

	n := float64(len(order))
	var total, totalSq float64
	for _, i := range order {
		y := ts.targets[i]
		total += y
		totalSq += y * y
	}
	parentSSE := totalSq - total*total/n

	var leftSum, leftSq float64
	bestGain := 0.0
	for k := 0; k < len(order)-1; k++ {
		y := ts.targets[order[k]]
		leftSum += y
		leftSq += y * y
		// Can't split between equal feature values.
		cur, next := ts.feats[order[k]][f], ts.feats[order[k+1]][f]
		if cur == next {
			continue
		}
		nl := float64(k + 1)
		nr := n - nl
		if int(nl) < minLeaf || int(nr) < minLeaf {
			continue
		}
		rightSum := total - leftSum
		rightSq := totalSq - leftSq
		sse := (leftSq - leftSum*leftSum/nl) + (rightSq - rightSum*rightSum/nr)
		if g := parentSSE - sse; g > bestGain {
			bestGain = g
			thresh = (cur + next) / 2
			ok = true
		}
	}
	return thresh, bestGain, ok
}

// Predict returns the tree's latency estimate (seconds) for a feature
// vector.
func (t *Tree) Predict(x [profile.FeatureCount]float64) float64 {
	i := int32(0)
	for {
		n := t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int { return t.depth(0) }

func (t *Tree) depth(i int32) int {
	n := t.nodes[i]
	if n.feature < 0 {
		return 0
	}
	l, r := t.depth(n.left), t.depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Nodes returns the node count, a proxy for model size.
func (t *Tree) Nodes() int { return len(t.nodes) }

func mean(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	s := 0.0
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func constantTargets(y []float64, idx []int) bool {
	for _, i := range idx[1:] {
		if math.Abs(y[i]-y[idx[0]]) > 1e-12 {
			return false
		}
	}
	return true
}

func allFeatures() []int {
	f := make([]int, profile.FeatureCount)
	for i := range f {
		f[i] = i
	}
	return f
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("Tree{nodes: %d, depth: %d}", t.Nodes(), t.Depth())
}
