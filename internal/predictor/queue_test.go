package predictor

import (
	"testing"

	"qoserve/internal/profile"
	"qoserve/internal/sim"
)

// linearFeats is a transparent FeaturePredictor for scoring tests: latency
// is a fixed linear function of the feature vector, so expected estimates
// can be computed by hand.
type linearFeats struct{}

func (linearFeats) PredictFeats(x [profile.FeatureCount]float64) sim.Time {
	us := 100 + x[profile.FeatChunkTokens] + 0.1*x[profile.FeatPrefillCtx] +
		10*x[profile.FeatNumDecodes] + 0.01*x[profile.FeatSumDecodeCtx] + 0.05*x[profile.FeatMaxDecodeCtx]
	return sim.Time(us) * sim.Microsecond
}

func (l linearFeats) PredictSafeFeats(x [profile.FeatureCount]float64) sim.Time {
	return l.PredictFeats(x)
}

func TestEstimateCompletionOrdersByBacklog(t *testing.T) {
	p := linearFeats{}
	est := func(pendingPrefill, decodes, sumCtx, maxCtx int) sim.Time {
		return EstimateCompletion(p, pendingPrefill, decodes, sumCtx, maxCtx, 512, 1024, 16)
	}
	idle := est(0, 0, 0, 0)
	backlogged := est(16384, 0, 0, 0)
	decoding := est(0, 8, 8192, 2048)
	if idle <= 0 {
		t.Fatalf("idle estimate %v, want positive", idle)
	}
	if backlogged <= idle {
		t.Fatalf("prefill backlog did not raise the estimate: idle %v, backlogged %v", idle, backlogged)
	}
	if decoding <= idle {
		t.Fatalf("decode load did not raise the estimate: idle %v, decoding %v", idle, decoding)
	}
}

func TestEstimateCompletionChunkingMath(t *testing.T) {
	p := linearFeats{}
	// 1024 backlog + 1024 prompt through 512-token chunks = 4 prefill
	// iterations at the midpoint context, then 3 decode iterations.
	pending := 2048.0
	var pf [profile.FeatureCount]float64
	pf[profile.FeatChunkTokens] = 512
	pf[profile.FeatPrefillCtx] = pending / 2
	pf[profile.FeatNumDecodes] = 2
	pf[profile.FeatSumDecodeCtx] = 600
	pf[profile.FeatMaxDecodeCtx] = 400
	var df [profile.FeatureCount]float64
	df[profile.FeatNumDecodes] = 3
	df[profile.FeatSumDecodeCtx] = 600 + 1024
	df[profile.FeatMaxDecodeCtx] = 1024
	want := p.PredictSafeFeats(pf)*4 + p.PredictFeats(df)*3

	got := EstimateCompletion(p, 1024, 2, 600, 400, 512, 1024, 4)
	if got != want {
		t.Fatalf("estimate %v, want %v", got, want)
	}
}

func TestEstimateCompletionDegenerateInputs(t *testing.T) {
	p := linearFeats{}
	// Zero/negative chunk falls back to the default; tiny prompts clamp to
	// one token; a single-token decode prices no decode iterations.
	if est := EstimateCompletion(p, 0, 0, 0, 0, 0, 0, 0); est <= 0 {
		t.Fatalf("degenerate estimate %v, want positive", est)
	}
	one := EstimateCompletion(p, 0, 0, 0, 0, 0, 64, 1)
	two := EstimateCompletion(p, 0, 0, 0, 0, 0, 64, 2)
	if two <= one {
		t.Fatalf("second decode token added no cost: %v vs %v", one, two)
	}
	// A chunk larger than the pending work is clamped: a 64-token prompt
	// through an 8192 budget is one iteration pricing 64 chunk tokens.
	var x [profile.FeatureCount]float64
	x[profile.FeatChunkTokens] = 64
	x[profile.FeatPrefillCtx] = 32
	if got, want := EstimateCompletion(p, 0, 0, 0, 0, 8192, 64, 1), p.PredictSafeFeats(x); got != want {
		t.Fatalf("clamped chunk estimate %v, want %v", got, want)
	}
}

func TestEstimateCompletionAllocFree(t *testing.T) {
	var p FeaturePredictor = linearFeats{}
	allocs := testing.AllocsPerRun(200, func() {
		EstimateCompletion(p, 4096, 4, 2000, 800, 256, 1024, 32)
	})
	if allocs != 0 {
		t.Fatalf("EstimateCompletion allocates %v times per call, want 0", allocs)
	}
}

func TestEstimateCompletionPrefixCreditsHitTokens(t *testing.T) {
	p := linearFeats{}
	full := EstimateCompletionPrefix(p, 2048, 2, 600, 400, 512, 1024, 8, 0, 0)
	if full != EstimateCompletion(p, 2048, 2, 600, 400, 512, 1024, 8) {
		t.Fatal("zero hit/transfer must reduce to EstimateCompletion")
	}
	hit := EstimateCompletionPrefix(p, 2048, 2, 600, 400, 512, 1024, 8, 512, 0)
	if hit >= full {
		t.Fatalf("prefix credit did not lower the estimate: %v >= %v", hit, full)
	}
	// Credit is capped at prompt-1: the final prompt token always runs.
	capped := EstimateCompletionPrefix(p, 0, 0, 0, 0, 512, 1024, 8, 4096, 0)
	minimal := EstimateCompletionPrefix(p, 0, 0, 0, 0, 512, 1024, 8, 1023, 0)
	if capped != minimal {
		t.Fatalf("overshooting hit tokens changed the estimate: %v != %v", capped, minimal)
	}
	// The decode side still prices the full prompt context: with no
	// prefill left to chunk, a bigger prompt must still cost more decode.
	smallCtx := EstimateCompletionPrefix(p, 0, 1, 100, 100, 512, 256, 8, 255, 0)
	bigCtx := EstimateCompletionPrefix(p, 0, 1, 100, 100, 512, 4096, 8, 4095, 0)
	if bigCtx <= smallCtx {
		t.Fatalf("cached context vanished from decode pricing: %v <= %v", bigCtx, smallCtx)
	}
}

func TestEstimateCompletionPrefixChargesTransfer(t *testing.T) {
	p := linearFeats{}
	base := EstimateCompletionPrefix(p, 0, 0, 0, 0, 512, 1024, 8, 512, 0)
	xfer := sim.Time(3) * sim.Millisecond
	got := EstimateCompletionPrefix(p, 0, 0, 0, 0, 512, 1024, 8, 512, xfer)
	if got != base+xfer {
		t.Fatalf("transfer time not serialized: %v != %v + %v", got, base, xfer)
	}
	if EstimateCompletionPrefix(p, 0, 0, 0, 0, 512, 1024, 8, 512, -xfer) != base {
		t.Fatal("negative transfer must clamp to zero")
	}
}
