package predictor

import (
	"encoding/json"
	"fmt"
	"io"

	"qoserve/internal/profile"
)

// The paper trains one predictor per (model, hardware, parallelism)
// configuration from an offline profiling pass and ships it with the
// deployment. Save/Load provide that artifact: a JSON encoding of the
// forest so serving processes do not re-profile on startup.

type wireNode struct {
	Feature   int     `json:"f"`
	Threshold float64 `json:"t,omitempty"`
	Left      int32   `json:"l,omitempty"`
	Right     int32   `json:"r,omitempty"`
	Value     float64 `json:"v,omitempty"`
}

type wireTree struct {
	Nodes []wireNode `json:"nodes"`
}

type wireForest struct {
	Version int        `json:"version"`
	Margin  float64    `json:"margin"`
	Trees   []wireTree `json:"trees"`
}

const wireVersion = 1

// Save serializes the forest as JSON.
func (f *Forest) Save(w io.Writer) error {
	wf := wireForest{Version: wireVersion, Margin: f.margin}
	for _, t := range f.trees {
		wt := wireTree{Nodes: make([]wireNode, len(t.nodes))}
		for i, n := range t.nodes {
			wt.Nodes[i] = wireNode{
				Feature: n.feature, Threshold: n.threshold,
				Left: n.left, Right: n.right, Value: n.value,
			}
		}
		wf.Trees = append(wf.Trees, wt)
	}
	return json.NewEncoder(w).Encode(wf)
}

// Load reads a forest saved by Save, validating structural integrity
// (children in range, no trivial cycles) so a corrupt file cannot cause an
// infinite Predict loop.
func Load(r io.Reader) (*Forest, error) {
	var wf wireForest
	if err := json.NewDecoder(r).Decode(&wf); err != nil {
		return nil, fmt.Errorf("predictor: decoding forest: %w", err)
	}
	if wf.Version != wireVersion {
		return nil, fmt.Errorf("predictor: unsupported forest version %d", wf.Version)
	}
	if wf.Margin < 0 || wf.Margin > 1 {
		return nil, fmt.Errorf("predictor: margin %v outside [0,1]", wf.Margin)
	}
	if len(wf.Trees) == 0 {
		return nil, fmt.Errorf("predictor: empty forest")
	}
	f := &Forest{margin: wf.Margin}
	for ti, wt := range wf.Trees {
		if len(wt.Nodes) == 0 {
			return nil, fmt.Errorf("predictor: tree %d has no nodes", ti)
		}
		t := &Tree{nodes: make([]treeNode, len(wt.Nodes))}
		for i, n := range wt.Nodes {
			if n.Feature >= 0 {
				if n.Feature >= profile.FeatureCount {
					return nil, fmt.Errorf("predictor: tree %d node %d: feature %d out of range", ti, i, n.Feature)
				}
				if int(n.Left) <= i || int(n.Right) <= i ||
					int(n.Left) >= len(wt.Nodes) || int(n.Right) >= len(wt.Nodes) {
					return nil, fmt.Errorf("predictor: tree %d node %d: child indices invalid", ti, i)
				}
			}
			t.nodes[i] = treeNode{
				feature: n.Feature, threshold: n.Threshold,
				left: n.Left, right: n.Right, value: n.Value,
			}
		}
		f.trees = append(f.trees, t)
	}
	f.finalize()
	return f, nil
}
