package predictor

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/profile"
	"qoserve/internal/sim"
)

func trainedForest(t testing.TB) (*Forest, model.Config) {
	t.Helper()
	mc := model.Llama3_8B_A100_TP1()
	samples, err := profile.Collect(mc, profile.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Train(samples, ForestConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return f, mc
}

func TestTreeFitsSimpleFunction(t *testing.T) {
	// y = 2*x0: a tree should recover this within leaf-granularity error.
	var samples []profile.Sample
	for i := 0; i < 400; i++ {
		var f [profile.FeatureCount]float64
		f[0] = float64(i)
		samples = append(samples, profile.Sample{Features: f, Latency: 2 * float64(i)})
	}
	tree := FitTree(samples, nil, TreeConfig{}, nil)
	for _, x := range []float64{10, 100, 250, 399} {
		var f [profile.FeatureCount]float64
		f[0] = x
		got := tree.Predict(f)
		if math.Abs(got-2*x) > 25 { // leaves average ~4+ points
			t.Errorf("tree(%v) = %v, want ~%v", x, got, 2*x)
		}
	}
	if tree.Depth() < 3 {
		t.Errorf("tree suspiciously shallow: %v", tree)
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	var samples []profile.Sample
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		var f [profile.FeatureCount]float64
		f[0] = rng.Float64()
		samples = append(samples, profile.Sample{Features: f, Latency: rng.Float64()})
	}
	tree := FitTree(samples, nil, TreeConfig{MinLeaf: 50}, nil)
	// With min leaf 50 over 100 samples, at most one split.
	if tree.Nodes() > 3 {
		t.Errorf("tree has %d nodes, expected <= 3", tree.Nodes())
	}
}

func TestTreeConstantTarget(t *testing.T) {
	var samples []profile.Sample
	for i := 0; i < 50; i++ {
		var f [profile.FeatureCount]float64
		f[0] = float64(i)
		samples = append(samples, profile.Sample{Features: f, Latency: 7})
	}
	tree := FitTree(samples, nil, TreeConfig{}, nil)
	if tree.Nodes() != 1 {
		t.Errorf("constant-target tree has %d nodes, want 1", tree.Nodes())
	}
	var f [profile.FeatureCount]float64
	if got := tree.Predict(f); got != 7 {
		t.Errorf("predict = %v, want 7", got)
	}
}

// TestForestAccuracy is the paper's <10% error-margin claim: the forest
// should predict batch latency within ~10% on unseen shapes.
func TestForestAccuracy(t *testing.T) {
	f, mc := trainedForest(t)
	rng := rand.New(rand.NewSource(99))
	var worst, sumErr float64
	const trials = 300
	for i := 0; i < trials; i++ {
		shape := model.BatchShape{}
		if rng.Intn(4) > 0 {
			shape.Prefill = []model.ChunkShape{{
				Tokens:   64 + rng.Intn(3000),
				CtxStart: rng.Intn(6000),
			}}
		}
		for d := rng.Intn(40); d > 0; d-- {
			shape.DecodeCtx = append(shape.DecodeCtx, rng.Intn(8000))
		}
		if shape.TotalNewTokens() == 0 {
			continue
		}
		truth := mc.BatchTime(shape).Seconds()
		pred := f.Predict(shape).Seconds()
		rel := math.Abs(pred-truth) / truth
		sumErr += rel
		if rel > worst {
			worst = rel
		}
	}
	if avg := sumErr / trials; avg > 0.10 {
		t.Errorf("mean relative error %.3f, want < 0.10", avg)
	}
	if worst > 0.60 {
		t.Errorf("worst relative error %.3f unreasonably high", worst)
	}
}

func TestPredictSafeInflates(t *testing.T) {
	f, _ := trainedForest(t)
	shape := model.BatchShape{
		Prefill:   []model.ChunkShape{{Tokens: 512}},
		DecodeCtx: []int{1000, 2000},
	}
	raw := f.Predict(shape)
	safe := f.PredictSafe(shape)
	ratio := float64(safe) / float64(raw)
	if math.Abs(ratio-1.10) > 1e-6 {
		t.Errorf("safe/raw = %v, want 1.10", ratio)
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, ForestConfig{}); err == nil {
		t.Error("empty training set accepted")
	}
	samples := make([]profile.Sample, 100)
	if _, err := Train(samples, ForestConfig{SampleFrac: 2}); err == nil {
		t.Error("sample fraction > 1 accepted")
	}
	if _, err := Train(samples, ForestConfig{SafetyMargin: 1.5}); err == nil {
		t.Error("margin > 1 accepted")
	}
}

func TestOraclePredictsExactly(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	o := Oracle{Config: mc}
	shape := model.BatchShape{
		Prefill:   []model.ChunkShape{{Tokens: 777, CtxStart: 123}},
		DecodeCtx: []int{50, 60},
	}
	if o.Predict(shape) != mc.BatchTime(shape) {
		t.Error("oracle deviates from cost model")
	}
	om := Oracle{Config: mc, Margin: 0.2}
	want := sim.Time(float64(mc.BatchTime(shape)) * 1.2)
	if got := om.PredictSafe(shape); got != want {
		t.Errorf("margined oracle = %v, want %v", got, want)
	}
}

// TestChunkBudgetRespectsBudget verifies the inverse query: the chunk
// returned always fits the budget under the safe prediction, and chunk+1
// would not (or the cap was hit).
func TestChunkBudgetRespectsBudget(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	o := Oracle{Config: mc}
	decodes := []int{1000, 2000, 500}
	for _, budgetMS := range []int{30, 50, 80, 120, 250} {
		budget := sim.Time(budgetMS) * sim.Millisecond
		chunk := ChunkBudget(o, decodes, 0, budget, 4096)
		shape := model.BatchShape{DecodeCtx: decodes}
		if chunk > 0 {
			shape.Prefill = []model.ChunkShape{{Tokens: chunk}}
		}
		if got := o.PredictSafe(shape); got > budget {
			t.Errorf("budget %v: chunk %d predicted %v over budget", budget, chunk, got)
		}
		if chunk < 4096 {
			shape.Prefill = []model.ChunkShape{{Tokens: chunk + 1}}
			if got := o.PredictSafe(shape); got <= budget {
				t.Errorf("budget %v: chunk %d+1 still fits (%v); not maximal", budget, chunk, got)
			}
		}
	}
}

func TestChunkBudgetEdges(t *testing.T) {
	mc := model.Llama3_8B_A100_TP1()
	o := Oracle{Config: mc}
	// Budget below the fixed overhead: nothing fits.
	if got := ChunkBudget(o, nil, 0, sim.Millisecond, 4096); got != 0 {
		t.Errorf("tiny budget chunk = %d, want 0", got)
	}
	// Huge budget: cap wins.
	if got := ChunkBudget(o, nil, 0, sim.Hour, 2500); got != 2500 {
		t.Errorf("huge budget chunk = %d, want 2500", got)
	}
	// Degenerate caps/budgets.
	if got := ChunkBudget(o, nil, 0, 0, 2500); got != 0 {
		t.Errorf("zero budget chunk = %d", got)
	}
	if got := ChunkBudget(o, nil, 0, sim.Second, 0); got != 0 {
		t.Errorf("zero cap chunk = %d", got)
	}
}

// TestChunkBudgetUnderPredictionBias: with a forest, the margin must make
// the realized (true) latency of the chosen chunk exceed the budget only
// rarely and mildly. This is the "err on the side of under-predicting"
// requirement.
func TestChunkBudgetUnderPredictionBias(t *testing.T) {
	f, mc := trainedForest(t)
	rng := rand.New(rand.NewSource(17))
	over := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		var decodes []int
		for d := rng.Intn(20); d > 0; d-- {
			decodes = append(decodes, rng.Intn(4000))
		}
		budget := sim.Time(30+rng.Intn(200)) * sim.Millisecond
		chunk := ChunkBudget(f, decodes, rng.Intn(4000), budget, 4096)
		if chunk == 0 {
			continue
		}
		shape := model.BatchShape{
			Prefill:   []model.ChunkShape{{Tokens: chunk}},
			DecodeCtx: decodes,
		}
		truth := mc.BatchTime(shape)
		if truth > budget+budget/10 { // >10% over budget counts as a blown target
			over++
		}
	}
	if frac := float64(over) / trials; frac > 0.05 {
		t.Errorf("blown budgets in %.1f%% of trials, want <= 5%%", 100*frac)
	}
}

func TestForestTreeCount(t *testing.T) {
	f, _ := trainedForest(t)
	if f.Trees() != 20 {
		t.Errorf("forest has %d trees, want default 20", f.Trees())
	}
}

func BenchmarkForestPredict(b *testing.B) {
	f, _ := trainedForest(b)
	shape := model.BatchShape{
		Prefill:   []model.ChunkShape{{Tokens: 512, CtxStart: 800}},
		DecodeCtx: []int{100, 2000, 512, 4096, 900, 1500, 777, 3000},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Predict(shape)
	}
}

func BenchmarkChunkBudget(b *testing.B) {
	f, _ := trainedForest(b)
	decodes := []int{100, 2000, 512, 4096, 900, 1500, 777, 3000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ChunkBudget(f, decodes, 1000, 80*sim.Millisecond, 4096)
	}
}

func BenchmarkTrainForest(b *testing.B) {
	mc := model.Llama3_8B_A100_TP1()
	samples, err := profile.Collect(mc, profile.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(samples, ForestConfig{Seed: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForestSaveLoadRoundTrip(t *testing.T) {
	f, mc := trainedForest(t)
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Trees() != f.Trees() {
		t.Fatalf("tree count %d != %d", back.Trees(), f.Trees())
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		shape := model.BatchShape{
			Prefill:   []model.ChunkShape{{Tokens: 1 + rng.Intn(3000), CtxStart: rng.Intn(4000)}},
			DecodeCtx: []int{rng.Intn(5000), rng.Intn(5000)},
		}
		if back.Predict(shape) != f.Predict(shape) {
			t.Fatalf("prediction differs after round trip on %+v", shape)
		}
		if back.PredictSafe(shape) != f.PredictSafe(shape) {
			t.Fatal("safe prediction differs after round trip")
		}
	}
	_ = mc
}

func TestLoadRejectsCorruptForests(t *testing.T) {
	cases := map[string]string{
		"garbage":     `{not json`,
		"bad version": `{"version":9,"margin":0.1,"trees":[{"nodes":[{"f":-1,"v":1}]}]}`,
		"bad margin":  `{"version":1,"margin":7,"trees":[{"nodes":[{"f":-1,"v":1}]}]}`,
		"no trees":    `{"version":1,"margin":0.1,"trees":[]}`,
		"empty tree":  `{"version":1,"margin":0.1,"trees":[{"nodes":[]}]}`,
		"bad feature": `{"version":1,"margin":0.1,"trees":[{"nodes":[{"f":99,"l":1,"r":2},{"f":-1,"v":1},{"f":-1,"v":2}]}]}`,
		"self cycle":  `{"version":1,"margin":0.1,"trees":[{"nodes":[{"f":0,"l":0,"r":0}]}]}`,
		"oob child":   `{"version":1,"margin":0.1,"trees":[{"nodes":[{"f":0,"l":5,"r":6}]}]}`,
	}
	for name, payload := range cases {
		if _, err := Load(strings.NewReader(payload)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
