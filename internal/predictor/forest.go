package predictor

import (
	"fmt"
	"math/rand"

	"qoserve/internal/model"
	"qoserve/internal/profile"
	"qoserve/internal/sim"
)

// LatencyPredictor estimates the execution latency of a batch shape. The
// replica's scheduler consults it every iteration, so implementations must
// be cheap (the paper reports CPU-side prediction with negligible
// overhead).
type LatencyPredictor interface {
	Predict(b model.BatchShape) sim.Time
}

// ForestConfig controls random-forest training.
type ForestConfig struct {
	Trees         int     // default 20
	SampleFrac    float64 // bootstrap fraction per tree, default 0.7
	Tree          TreeConfig
	FeatureSubset int   // features per split, default 3 of 5
	Seed          int64 // PRNG seed for bagging
	// SafetyMargin inflates predictions used for budget inversion so the
	// chunk choice under-shoots rather than over-shoots (Section 3.6.1);
	// default 0.10 (10%).
	SafetyMargin float64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees == 0 {
		c.Trees = 20
	}
	if c.SampleFrac == 0 {
		c.SampleFrac = 0.7
	}
	if c.FeatureSubset == 0 {
		c.FeatureSubset = 3
	}
	if c.SafetyMargin == 0 {
		c.SafetyMargin = 0.10
	}
	return c
}

// Forest is a bagged ensemble of regression trees implementing
// LatencyPredictor.
type Forest struct {
	trees  []*Tree
	margin float64
	// flat concatenates every tree's nodes into one contiguous array with
	// child indices rebased (roots[i] is tree i's root), so ensemble
	// prediction walks a single cache-friendly slice instead of chasing a
	// pointer per tree. Built by finalize after training or loading.
	flat  []treeNode
	roots []int32
}

// finalize builds the flattened node array. It must be called whenever the
// tree set changes; predictions read only the flattened form.
func (f *Forest) finalize() {
	total := 0
	for _, t := range f.trees {
		total += len(t.nodes)
	}
	f.flat = make([]treeNode, 0, total)
	f.roots = make([]int32, 0, len(f.trees))
	for _, t := range f.trees {
		base := int32(len(f.flat))
		f.roots = append(f.roots, base)
		for _, n := range t.nodes {
			if n.feature >= 0 {
				n.left += base
				n.right += base
			}
			f.flat = append(f.flat, n)
		}
	}
}

// Train fits a random forest on profiled samples.
func Train(samples []profile.Sample, cfg ForestConfig) (*Forest, error) {
	cfg = cfg.withDefaults()
	if len(samples) < 2*cfg.Tree.withDefaults().MinLeaf {
		return nil, fmt.Errorf("predictor: %d samples is too few to train", len(samples))
	}
	if cfg.SampleFrac <= 0 || cfg.SampleFrac > 1 {
		return nil, fmt.Errorf("predictor: sample fraction %v outside (0,1]", cfg.SampleFrac)
	}
	if cfg.SafetyMargin < 0 || cfg.SafetyMargin > 1 {
		return nil, fmt.Errorf("predictor: safety margin %v outside [0,1]", cfg.SafetyMargin)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	treeCfg := cfg.Tree
	treeCfg.FeatureSubset = cfg.FeatureSubset

	f := &Forest{margin: cfg.SafetyMargin}
	perTree := int(cfg.SampleFrac * float64(len(samples)))
	if perTree < 1 {
		perTree = 1
	}
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, perTree)
		for i := range idx {
			idx[i] = rng.Intn(len(samples))
		}
		pick := func(n int) []int {
			perm := rng.Perm(profile.FeatureCount)
			return perm[:n]
		}
		f.trees = append(f.trees, FitTree(samples, idx, treeCfg, pick))
	}
	f.finalize()
	return f, nil
}

// Predict returns the mean prediction across trees, without the safety
// margin (raw latency estimate).
//
//qoserve:hotpath
func (f *Forest) Predict(b model.BatchShape) sim.Time {
	return f.PredictFeats(profile.Features(b))
}

// PredictSafe returns the margin-inflated prediction used for budget
// checks: latency the scheduler should assume the batch takes.
//
//qoserve:hotpath
func (f *Forest) PredictSafe(b model.BatchShape) sim.Time {
	return sim.Time(float64(f.Predict(b)) * (1 + f.margin))
}

// PredictFeats evaluates a raw feature vector against the flattened
// ensemble. This is the allocation-free core of Predict: the scheduler's
// budget searches probe it a dozen times per planned batch.
//
//qoserve:hotpath
func (f *Forest) PredictFeats(x [profile.FeatureCount]float64) sim.Time {
	s := 0.0
	for _, root := range f.roots {
		i := root
		for {
			n := &f.flat[i]
			if n.feature < 0 {
				s += n.value
				break
			}
			if x[n.feature] <= n.threshold {
				i = n.left
			} else {
				i = n.right
			}
		}
	}
	return sim.FromSeconds(s / float64(len(f.roots)))
}

// PredictSafeFeats is PredictFeats with the safety margin applied,
// matching PredictSafe exactly.
//
//qoserve:hotpath
func (f *Forest) PredictSafeFeats(x [profile.FeatureCount]float64) sim.Time {
	return sim.Time(float64(f.PredictFeats(x)) * (1 + f.margin))
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// Oracle is a LatencyPredictor that consults the analytic cost model
// directly. It is the "perfect predictor" used in ablations to separate
// prediction error from scheduling policy.
type Oracle struct {
	Config model.Config
	// Margin mirrors the forest's safety margin so ablations isolate the
	// learning, not the conservatism. Usually 0 for a true oracle.
	Margin float64
}

// Predict returns the exact batch time.
func (o Oracle) Predict(b model.BatchShape) sim.Time {
	return o.Config.BatchTime(b)
}

// PredictSafe returns the margin-inflated exact time.
func (o Oracle) PredictSafe(b model.BatchShape) sim.Time {
	return sim.Time(float64(o.Predict(b)) * (1 + o.Margin))
}

// SafePredictor is the interface dynamic chunking needs: a conservative
// latency estimate.
type SafePredictor interface {
	LatencyPredictor
	PredictSafe(b model.BatchShape) sim.Time
}

// FeaturePredictor is implemented by predictors that can price a raw
// feature vector directly, without a model.BatchShape being materialized.
// The planner's budget searches use it to probe candidate chunk sizes
// allocation-free: the decode side of the feature vector is fixed across
// every probe of one plan, so only the chunk fields change. Predictors
// that need the full per-request shape (the analytic Oracle) simply do not
// implement it, and callers fall back to the shape-based path.
type FeaturePredictor interface {
	PredictFeats(x [profile.FeatureCount]float64) sim.Time
	PredictSafeFeats(x [profile.FeatureCount]float64) sim.Time
}

// NoMargin adapts a predictor so its safe estimate equals its raw estimate.
// Schedulers use it in regimes where conservatism only wastes throughput —
// e.g. when the iteration budget is already floored at a TBT target and the
// affected tokens are late regardless.
func NoMargin(p LatencyPredictor) SafePredictor {
	if fp, ok := p.(FeaturePredictor); ok {
		return noMarginFeats{noMargin{p}, fp}
	}
	return noMargin{p}
}

type noMargin struct{ LatencyPredictor }

func (n noMargin) PredictSafe(b model.BatchShape) sim.Time { return n.Predict(b) }

// noMarginFeats preserves the wrapped predictor's feature fast path.
type noMarginFeats struct {
	noMargin
	fp FeaturePredictor
}

func (n noMarginFeats) PredictFeats(x [profile.FeatureCount]float64) sim.Time {
	return n.fp.PredictFeats(x)
}

func (n noMarginFeats) PredictSafeFeats(x [profile.FeatureCount]float64) sim.Time {
	return n.fp.PredictFeats(x)
}

// ChunkBudget implements GET_PREFILL_BUDGET from Algorithm 1: the largest
// prefill chunk (up to maxChunk) that keeps the predicted iteration latency
// within budget, given the decode side of the batch. It returns 0 when even
// a minimal chunk cannot fit.
//
// The latency surface is monotone in chunk size, so a binary search over
// [0, maxChunk] suffices; with tree predictors the surface is piecewise
// constant, and the search still converges to a safe (conservative) value
// because PredictSafe is non-decreasing along the probed path.
//
//qoserve:hotpath
func ChunkBudget(p SafePredictor, decodeCtx []int, prefillCtx int, budget sim.Time, maxChunk int) int {
	if maxChunk <= 0 || budget <= 0 {
		return 0
	}
	if fp, ok := p.(FeaturePredictor); ok {
		return chunkBudgetFeats(fp, DecodeFeats(decodeCtx), prefillCtx, budget, maxChunk)
	}
	shapeFor := func(chunk int) model.BatchShape {
		b := model.BatchShape{DecodeCtx: decodeCtx}
		if chunk > 0 {
			b.Prefill = []model.ChunkShape{{Tokens: chunk, CtxStart: prefillCtx}}
		}
		return b
	}
	if p.PredictSafe(shapeFor(maxChunk)) <= budget {
		return maxChunk
	}
	lo, hi := 0, maxChunk // invariant: lo fits, hi doesn't
	if p.PredictSafe(shapeFor(0)) > budget {
		return 0
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.PredictSafe(shapeFor(mid)) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// DecodeFeats builds the decode-side feature vector shared by every probe
// of one budget search: the chunk fields are zero, matching a decode-only
// batch shape.
//
//qoserve:hotpath
func DecodeFeats(decodeCtx []int) [profile.FeatureCount]float64 {
	var x [profile.FeatureCount]float64
	x[profile.FeatNumDecodes] = float64(len(decodeCtx))
	for _, c := range decodeCtx {
		x[profile.FeatSumDecodeCtx] += float64(c)
		if fc := float64(c); fc > x[profile.FeatMaxDecodeCtx] {
			x[profile.FeatMaxDecodeCtx] = fc
		}
	}
	return x
}

// ChunkBudgetFeats is ChunkBudget for callers that already hold the
// decode-side feature vector (see DecodeFeats); the search itself never
// allocates.
//
//qoserve:hotpath
func ChunkBudgetFeats(p FeaturePredictor, decodeFeats [profile.FeatureCount]float64, prefillCtx int, budget sim.Time, maxChunk int) int {
	if maxChunk <= 0 || budget <= 0 {
		return 0
	}
	return chunkBudgetFeats(p, decodeFeats, prefillCtx, budget, maxChunk)
}

// chunkBudgetFeats runs the binary search over the feature vector. The
// probed vectors are identical to what Features would extract from the
// equivalent one-chunk batch shape, so the result matches the shape-based
// path bit for bit.
//
//qoserve:hotpath
func chunkBudgetFeats(p FeaturePredictor, x [profile.FeatureCount]float64, prefillCtx int, budget sim.Time, maxChunk int) int {
	probe := func(chunk int) sim.Time {
		if chunk > 0 {
			x[profile.FeatChunkTokens] = float64(chunk)
			x[profile.FeatPrefillCtx] = float64(prefillCtx)
		} else {
			x[profile.FeatChunkTokens] = 0
			x[profile.FeatPrefillCtx] = 0
		}
		return p.PredictSafeFeats(x)
	}
	if probe(maxChunk) <= budget {
		return maxChunk
	}
	lo, hi := 0, maxChunk // invariant: lo fits, hi doesn't
	if probe(0) > budget {
		return 0
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if probe(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
