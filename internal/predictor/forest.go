package predictor

import (
	"fmt"
	"math/rand"

	"qoserve/internal/model"
	"qoserve/internal/profile"
	"qoserve/internal/sim"
)

// LatencyPredictor estimates the execution latency of a batch shape. The
// replica's scheduler consults it every iteration, so implementations must
// be cheap (the paper reports CPU-side prediction with negligible
// overhead).
type LatencyPredictor interface {
	Predict(b model.BatchShape) sim.Time
}

// ForestConfig controls random-forest training.
type ForestConfig struct {
	Trees         int     // default 20
	SampleFrac    float64 // bootstrap fraction per tree, default 0.7
	Tree          TreeConfig
	FeatureSubset int   // features per split, default 3 of 5
	Seed          int64 // PRNG seed for bagging
	// SafetyMargin inflates predictions used for budget inversion so the
	// chunk choice under-shoots rather than over-shoots (Section 3.6.1);
	// default 0.10 (10%).
	SafetyMargin float64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.Trees == 0 {
		c.Trees = 20
	}
	if c.SampleFrac == 0 {
		c.SampleFrac = 0.7
	}
	if c.FeatureSubset == 0 {
		c.FeatureSubset = 3
	}
	if c.SafetyMargin == 0 {
		c.SafetyMargin = 0.10
	}
	return c
}

// Forest is a bagged ensemble of regression trees implementing
// LatencyPredictor.
type Forest struct {
	trees  []*Tree
	margin float64
}

// Train fits a random forest on profiled samples.
func Train(samples []profile.Sample, cfg ForestConfig) (*Forest, error) {
	cfg = cfg.withDefaults()
	if len(samples) < 2*cfg.Tree.withDefaults().MinLeaf {
		return nil, fmt.Errorf("predictor: %d samples is too few to train", len(samples))
	}
	if cfg.SampleFrac <= 0 || cfg.SampleFrac > 1 {
		return nil, fmt.Errorf("predictor: sample fraction %v outside (0,1]", cfg.SampleFrac)
	}
	if cfg.SafetyMargin < 0 || cfg.SafetyMargin > 1 {
		return nil, fmt.Errorf("predictor: safety margin %v outside [0,1]", cfg.SafetyMargin)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	treeCfg := cfg.Tree
	treeCfg.FeatureSubset = cfg.FeatureSubset

	f := &Forest{margin: cfg.SafetyMargin}
	perTree := int(cfg.SampleFrac * float64(len(samples)))
	if perTree < 1 {
		perTree = 1
	}
	for t := 0; t < cfg.Trees; t++ {
		idx := make([]int, perTree)
		for i := range idx {
			idx[i] = rng.Intn(len(samples))
		}
		pick := func(n int) []int {
			perm := rng.Perm(profile.FeatureCount)
			return perm[:n]
		}
		f.trees = append(f.trees, FitTree(samples, idx, treeCfg, pick))
	}
	return f, nil
}

// Predict returns the mean prediction across trees, without the safety
// margin (raw latency estimate).
func (f *Forest) Predict(b model.BatchShape) sim.Time {
	x := profile.Features(b)
	s := 0.0
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return sim.FromSeconds(s / float64(len(f.trees)))
}

// PredictSafe returns the margin-inflated prediction used for budget
// checks: latency the scheduler should assume the batch takes.
func (f *Forest) PredictSafe(b model.BatchShape) sim.Time {
	return sim.Time(float64(f.Predict(b)) * (1 + f.margin))
}

// Trees returns the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }

// Oracle is a LatencyPredictor that consults the analytic cost model
// directly. It is the "perfect predictor" used in ablations to separate
// prediction error from scheduling policy.
type Oracle struct {
	Config model.Config
	// Margin mirrors the forest's safety margin so ablations isolate the
	// learning, not the conservatism. Usually 0 for a true oracle.
	Margin float64
}

// Predict returns the exact batch time.
func (o Oracle) Predict(b model.BatchShape) sim.Time {
	return o.Config.BatchTime(b)
}

// PredictSafe returns the margin-inflated exact time.
func (o Oracle) PredictSafe(b model.BatchShape) sim.Time {
	return sim.Time(float64(o.Predict(b)) * (1 + o.Margin))
}

// SafePredictor is the interface dynamic chunking needs: a conservative
// latency estimate.
type SafePredictor interface {
	LatencyPredictor
	PredictSafe(b model.BatchShape) sim.Time
}

// NoMargin adapts a predictor so its safe estimate equals its raw estimate.
// Schedulers use it in regimes where conservatism only wastes throughput —
// e.g. when the iteration budget is already floored at a TBT target and the
// affected tokens are late regardless.
func NoMargin(p LatencyPredictor) SafePredictor { return noMargin{p} }

type noMargin struct{ LatencyPredictor }

func (n noMargin) PredictSafe(b model.BatchShape) sim.Time { return n.Predict(b) }

// ChunkBudget implements GET_PREFILL_BUDGET from Algorithm 1: the largest
// prefill chunk (up to maxChunk) that keeps the predicted iteration latency
// within budget, given the decode side of the batch. It returns 0 when even
// a minimal chunk cannot fit.
//
// The latency surface is monotone in chunk size, so a binary search over
// [0, maxChunk] suffices; with tree predictors the surface is piecewise
// constant, and the search still converges to a safe (conservative) value
// because PredictSafe is non-decreasing along the probed path.
func ChunkBudget(p SafePredictor, decodeCtx []int, prefillCtx int, budget sim.Time, maxChunk int) int {
	if maxChunk <= 0 || budget <= 0 {
		return 0
	}
	shapeFor := func(chunk int) model.BatchShape {
		b := model.BatchShape{DecodeCtx: decodeCtx}
		if chunk > 0 {
			b.Prefill = []model.ChunkShape{{Tokens: chunk, CtxStart: prefillCtx}}
		}
		return b
	}
	if p.PredictSafe(shapeFor(maxChunk)) <= budget {
		return maxChunk
	}
	lo, hi := 0, maxChunk // invariant: lo fits, hi doesn't
	if p.PredictSafe(shapeFor(0)) > budget {
		return 0
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if p.PredictSafe(shapeFor(mid)) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
