package predictor

import (
	"testing"

	"qoserve/internal/model"
	"qoserve/internal/profile"
)

// predictShape is a representative mixed batch for the allocation guards.
func predictShape() model.BatchShape {
	return model.BatchShape{
		Prefill:   []model.ChunkShape{{Tokens: 1024, CtxStart: 2048}},
		DecodeCtx: []int{128, 512, 1024, 4096, 256, 768, 2048, 96},
	}
}

// TestForestPredictAllocFree pins ensemble prediction — both the shape entry
// point and the raw feature path the scheduler probes — at zero allocations.
// A regression here fails CI.
func TestForestPredictAllocFree(t *testing.T) {
	f, _ := trainedForest(t)
	b := predictShape()
	x := profile.Features(b)
	if avg := testing.AllocsPerRun(200, func() { f.Predict(b) }); avg != 0 {
		t.Errorf("Predict allocates %.2f objects/run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { f.PredictSafeFeats(x) }); avg != 0 {
		t.Errorf("PredictSafeFeats allocates %.2f objects/run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		ChunkBudgetFeats(f, DecodeFeats(b.DecodeCtx), 2048, f.PredictSafe(b), 2500)
	}); avg != 0 {
		t.Errorf("ChunkBudgetFeats allocates %.2f objects/run, want 0", avg)
	}
}

// BenchmarkChunkBudgetFeats measures the full allocation-free budget
// inversion (the ~12-probe binary search run once per planned batch).
func BenchmarkChunkBudgetFeats(b *testing.B) {
	f, _ := trainedForest(b)
	shape := predictShape()
	decode := DecodeFeats(shape.DecodeCtx)
	budget := f.PredictSafe(shape)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ChunkBudgetFeats(f, decode, 2048, budget, 2500)
	}
}
