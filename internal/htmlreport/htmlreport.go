// Package htmlreport renders experiment sweeps as a self-contained HTML
// document with inline SVG line charts — the closest artifact to the
// paper's figures this repository produces. cmd/experiments -html collects
// every sweep table of a run into one report.
package htmlreport

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"
)

// Series is one labelled line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is one figure.
type Chart struct {
	Experiment string
	Title      string
	XLabel     string
	Series     []Series
}

// Builder accumulates charts for one report.
type Builder struct {
	charts []Chart
}

// Add appends a chart. Series are copied shallowly; callers must not
// mutate the slices afterwards.
func (b *Builder) Add(c Chart) { b.charts = append(b.charts, c) }

// Len reports the number of collected charts.
func (b *Builder) Len() int { return len(b.charts) }

// palette holds distinguishable line colors.
var palette = []string{
	"#1668a8", "#d1495b", "#3d8361", "#8d5fd3", "#c77d1e", "#3aa6a6",
}

// Write renders the report.
func (b *Builder) Write(w io.Writer, heading string) error {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&sb, "<title>%s</title>\n", html.EscapeString(heading))
	sb.WriteString(`<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 2em auto; max-width: 1200px; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
.grid { display: flex; flex-wrap: wrap; gap: 1.5em; }
figure { margin: 0; }
figcaption { font-size: 0.85em; color: #555; max-width: 420px; }
svg { background: #fafafa; border: 1px solid #ddd; }
</style></head><body>
`)
	fmt.Fprintf(&sb, "<h1>%s</h1>\n", html.EscapeString(heading))

	current := ""
	open := false
	for _, c := range b.charts {
		if c.Experiment != current {
			if open {
				sb.WriteString("</div>\n")
			}
			current = c.Experiment
			fmt.Fprintf(&sb, "<h2>%s</h2>\n<div class=\"grid\">\n", html.EscapeString(current))
			open = true
		}
		sb.WriteString(renderSVG(c))
	}
	if open {
		sb.WriteString("</div>\n")
	}
	sb.WriteString("</body></html>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// chart geometry.
const (
	width   = 420
	height  = 260
	marginL = 56
	marginR = 12
	marginT = 10
	marginB = 46
)

// renderSVG draws one chart as an inline SVG figure.
func renderSVG(c Chart) string {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		n := min(len(s.X), len(s.Y))
		for i := 0; i < n; i++ {
			if bad(s.X[i]) || bad(s.Y[i]) {
				continue
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX++
	}
	if maxY == minY {
		maxY++
	}
	if minY > 0 && minY < maxY/10 {
		minY = 0 // anchor near-zero ranges at zero for honest areas
	}

	px := func(x float64) float64 {
		return marginL + (x-minX)/(maxX-minX)*(width-marginL-marginR)
	}
	py := func(y float64) float64 {
		return float64(height-marginB) - (y-minY)/(maxY-minY)*(height-marginT-marginB)
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<figure><svg width="%d" height="%d" viewBox="0 0 %d %d">`,
		width, height+16*len(c.Series), width, height+16*len(c.Series))
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`,
		marginL, marginT, marginL, height-marginB)
	// Ticks.
	for i := 0; i <= 4; i++ {
		fx := minX + float64(i)/4*(maxX-minX)
		fy := minY + float64(i)/4*(maxY-minY)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`,
			px(fx), height-marginB+14, tick(fx))
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`,
			marginL-4, py(fy)+3, tick(fy))
	}
	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts []string
		n := min(len(s.X), len(s.Y))
		for j := 0; j < n; j++ {
			if bad(s.X[j]) || bad(s.Y[j]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[j]), py(s.Y[j])))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
				strings.Join(pts, " "), color)
			for _, p := range pts {
				fmt.Fprintf(&sb, `<circle cx="%s" cy="%s" r="2.4" fill="%s"/>`,
					before(p), after(p), color)
			}
		}
		// Legend row.
		ly := height + 12 + 16*i
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			marginL, ly-4, marginL+22, ly-4, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="11">%s</text>`,
			marginL+28, ly, html.EscapeString(s.Name))
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-size="10" text-anchor="middle">%s</text>`,
		(marginL+width-marginR)/2, height-marginB+30, html.EscapeString(c.XLabel))
	sb.WriteString(`</svg>`)
	fmt.Fprintf(&sb, `<figcaption>%s</figcaption></figure>`, html.EscapeString(c.Title))
	sb.WriteString("\n")
	return sb.String()
}

func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

func tick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func before(pt string) string { return pt[:strings.IndexByte(pt, ',')] }
func after(pt string) string  { return pt[strings.IndexByte(pt, ',')+1:] }
