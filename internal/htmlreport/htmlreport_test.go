package htmlreport

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleChart(exp, title string) Chart {
	return Chart{
		Experiment: exp,
		Title:      title,
		XLabel:     "load (QPS)",
		Series: []Series{
			{Name: "EDF", X: []float64{1, 2, 3}, Y: []float64{0, 10, 90}},
			{Name: "QoServe", X: []float64{1, 2, 3}, Y: []float64{0, 1, 3}},
		},
	}
}

func TestWriteReport(t *testing.T) {
	var b Builder
	b.Add(sampleChart("fig11", "Overall violations (%)"))
	b.Add(sampleChart("fig11", "Q1 violations (%)"))
	b.Add(sampleChart("fig14", "Median latency (s)"))
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	var buf bytes.Buffer
	if err := b.Write(&buf, "QoServe results"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<h1>QoServe results</h1>",
		"<h2>fig11</h2>",
		"<h2>fig14</h2>",
		"Overall violations",
		"polyline",
		"EDF", "QoServe",
		"load (QPS)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Two experiment groups -> two grids.
	if got := strings.Count(out, `<div class="grid">`); got != 2 {
		t.Errorf("grid count = %d, want 2", got)
	}
	// Six polylines (2 per chart x 3 charts).
	if got := strings.Count(out, "<polyline"); got != 6 {
		t.Errorf("polyline count = %d, want 6", got)
	}
}

func TestWriteEscapesHTML(t *testing.T) {
	var b Builder
	c := sampleChart("fig<script>", "title <b>bold</b>")
	c.Series[0].Name = "<img src=x>"
	b.Add(c)
	var buf bytes.Buffer
	if err := b.Write(&buf, "<h1>inject</h1>"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, forbidden := range []string{"<script>", "<b>bold</b>", "<img src=x>", "<h1>inject</h1>"} {
		if strings.Contains(out, forbidden) {
			t.Errorf("unescaped %q leaked into report", forbidden)
		}
	}
}

func TestRenderDegenerateSeries(t *testing.T) {
	cases := []Chart{
		{Experiment: "e", Title: "empty"},
		{Experiment: "e", Title: "nan", Series: []Series{{Name: "n", X: []float64{1}, Y: []float64{math.NaN()}}}},
		{Experiment: "e", Title: "single", Series: []Series{{Name: "s", X: []float64{5}, Y: []float64{5}}}},
		{Experiment: "e", Title: "mismatch", Series: []Series{{Name: "m", X: []float64{1, 2}, Y: []float64{1}}}},
	}
	for _, c := range cases {
		out := renderSVG(c)
		if !strings.Contains(out, "<svg") || strings.Contains(out, "NaN") {
			t.Errorf("chart %q rendered badly", c.Title)
		}
	}
}
