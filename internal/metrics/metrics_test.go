package metrics

import (
	"math"
	"testing"

	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

func interactiveClass() qos.Class {
	return qos.Class{Name: "Q1", Kind: qos.Interactive,
		SLO: qos.SLO{TTFT: 6 * sim.Second, TBT: 50 * sim.Millisecond}}
}

func batchClass() qos.Class {
	return qos.Class{Name: "Q2", Kind: qos.NonInteractive,
		SLO: qos.SLO{TTLT: 600 * sim.Second}}
}

// finished builds a completed request with the given TTFT/TTLT.
func finished(id uint64, class qos.Class, prio qos.Priority, prompt int, ttft, ttlt sim.Time) *request.Request {
	r := &request.Request{ID: id, App: class.Name, Class: class, Priority: prio,
		Arrival: 0, PromptTokens: prompt, DecodeTokens: 2}
	r.RecordPrefill(prompt, ttft)
	r.RecordDecodeToken(ttlt)
	return r
}

func TestOutcomeOfCompleted(t *testing.T) {
	r := finished(1, interactiveClass(), qos.High, 100, 2*sim.Second, 3*sim.Second)
	o := OutcomeOf(r, 10*sim.Second)
	if !o.Completed || !o.FirstToken {
		t.Fatal("completed request not marked complete")
	}
	if o.TTFT != 2*sim.Second || o.TTLT != 3*sim.Second {
		t.Fatalf("TTFT=%v TTLT=%v", o.TTFT, o.TTLT)
	}
	if o.Violated {
		t.Fatal("on-time request marked violated")
	}
	if o.Latency(10*sim.Second) != 3*sim.Second {
		t.Fatalf("latency = %v", o.Latency(10*sim.Second))
	}
}

func TestOutcomeOfStarved(t *testing.T) {
	r := &request.Request{ID: 2, Class: interactiveClass(), Arrival: 0,
		PromptTokens: 100, DecodeTokens: 5}
	o := OutcomeOf(r, 100*sim.Second)
	if o.Completed || o.FirstToken {
		t.Fatal("starved request marked complete")
	}
	if !o.Violated {
		t.Fatal("starved request past deadline not violated")
	}
	// Latency falls back to age.
	if o.Latency(100*sim.Second) != 100*sim.Second {
		t.Fatalf("latency = %v", o.Latency(100*sim.Second))
	}
}

func makeSummary(t *testing.T) *Summary {
	t.Helper()
	reqs := []*request.Request{
		finished(1, interactiveClass(), qos.High, 100, 2*sim.Second, 3*sim.Second),  // ok
		finished(2, interactiveClass(), qos.High, 9000, 8*sim.Second, 9*sim.Second), // TTFT violated
		finished(3, batchClass(), qos.Low, 500, 100*sim.Second, 200*sim.Second),     // ok
		finished(4, batchClass(), qos.High, 200, 100*sim.Second, 700*sim.Second),    // TTLT violated
	}
	return NewSummary(reqs, 1000*sim.Second, 2)
}

func TestViolationRate(t *testing.T) {
	s := makeSummary(t)
	if got := s.ViolationRate(All); got != 0.5 {
		t.Errorf("overall violation rate = %v, want 0.5", got)
	}
	if got := s.ViolationRate(ByClass("Q1")); got != 0.5 {
		t.Errorf("Q1 violation rate = %v, want 0.5", got)
	}
	if got := s.ViolationRate(ByPriority(qos.Low)); got != 0 {
		t.Errorf("low-priority violation rate = %v, want 0", got)
	}
	if got := s.ViolationRate(LongerThan(5000)); got != 1 {
		t.Errorf("long violation rate = %v, want 1", got)
	}
	if got := s.ViolationRate(ShorterThan(5000)); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("short violation rate = %v, want 1/3", got)
	}
	if got := s.ViolationRate(ByClass("missing")); got != 0 {
		t.Errorf("empty selection rate = %v, want 0", got)
	}
}

func TestTruncatedRequestsExcluded(t *testing.T) {
	// A batch request still inside its deadline at end-of-run must not
	// count as violated or dilute the denominator.
	running := &request.Request{ID: 9, Class: batchClass(), Arrival: 990 * sim.Second,
		PromptTokens: 10, DecodeTokens: 5}
	reqs := []*request.Request{
		finished(1, batchClass(), qos.High, 100, 100*sim.Second, 700*sim.Second), // violated
		running,
	}
	s := NewSummary(reqs, 1000*sim.Second, 1)
	if got := s.ViolationRate(All); got != 1 {
		t.Errorf("violation rate = %v, want 1 (truncated request excluded)", got)
	}
}

func TestQuantiles(t *testing.T) {
	s := makeSummary(t)
	// TTFTs: 2, 8, 100, 100 seconds.
	if got := s.TTFTQuantile(All, 0.5); math.Abs(got-54) > 1e-9 {
		t.Errorf("p50 TTFT = %v, want 54 (midpoint of 8 and 100)", got)
	}
	if got := s.TTFTQuantile(All, 0); got != 2 {
		t.Errorf("min TTFT = %v", got)
	}
	if got := s.TTFTQuantile(All, 1); got != 100 {
		t.Errorf("max TTFT = %v", got)
	}
	// TTLTs: 3, 9, 200, 700.
	if got := s.TTLTQuantile(ByClass("Q2"), 1); got != 700 {
		t.Errorf("Q2 max TTLT = %v", got)
	}
	// Empty selection is NaN.
	if got := s.LatencyQuantile(ByClass("missing"), 0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}

func TestGoodput(t *testing.T) {
	s := makeSummary(t)
	// 2 requests completed in SLO over 1000s across 2 replicas.
	if got := s.Goodput(); math.Abs(got-0.001) > 1e-12 {
		t.Errorf("goodput = %v, want 0.001", got)
	}
	if s.MeetsSLOTarget(0.01) {
		t.Error("50% violations meets 1% target")
	}
	if !s.MeetsSLOTarget(0.5) {
		t.Error("50% violations fails 50% target")
	}
}

func TestCompletionAndRelegationRates(t *testing.T) {
	r1 := finished(1, interactiveClass(), qos.High, 100, 2*sim.Second, 3*sim.Second)
	r2 := &request.Request{ID: 2, Class: interactiveClass(), Arrival: 0,
		PromptTokens: 10, DecodeTokens: 2, Relegated: true}
	s := NewSummary([]*request.Request{r1, r2}, 100*sim.Second, 1)
	if got := s.CompletionRate(All); got != 0.5 {
		t.Errorf("completion rate = %v", got)
	}
	if got := s.RelegationRate(All); got != 0.5 {
		t.Errorf("relegation rate = %v", got)
	}
	if got := s.CompletionRate(ByClass("none")); got != 0 {
		t.Errorf("empty completion rate = %v", got)
	}
	if got := s.RelegationRate(ByClass("none")); got != 0 {
		t.Errorf("empty relegation rate = %v", got)
	}
}

func TestTBTViolationRate(t *testing.T) {
	// Arrival 0, TTFT 6s: token-2 deadline 6.05s, token-3 6.10s.
	c := interactiveClass()
	r := &request.Request{ID: 1, Class: c, Arrival: 0, PromptTokens: 10, DecodeTokens: 3}
	r.RecordPrefill(10, sim.Second)
	r.RecordDecodeToken(6*sim.Second + 80*sim.Millisecond) // past 6.05s deadline
	r.RecordDecodeToken(6*sim.Second + 90*sim.Millisecond) // before 6.10s deadline
	s := NewSummary([]*request.Request{r}, 10*sim.Second, 1)
	if got := s.TBTViolationRate(All); got != 0.5 {
		t.Errorf("TBT violation rate = %v, want 0.5", got)
	}
	if got := s.MaxTBTQuantile(All, 1); math.Abs(got-5.08) > 1e-9 {
		t.Errorf("max TBT = %v, want 5.08", got)
	}
}

func TestAndFilter(t *testing.T) {
	s := makeSummary(t)
	f := And(ByClass("Q2"), ByPriority(qos.High))
	if got := s.Count(f); got != 1 {
		t.Errorf("combined filter count = %d, want 1", got)
	}
}

func TestRollingQuantile(t *testing.T) {
	var reqs []*request.Request
	// 10 requests arriving at 0..9s; latency grows with arrival.
	for i := 0; i < 10; i++ {
		r := &request.Request{ID: uint64(i + 1), Class: batchClass(),
			Arrival: sim.Time(i) * sim.Second, PromptTokens: 10, DecodeTokens: 1}
		r.RecordPrefill(10, r.Arrival+sim.Time(i+1)*sim.Second)
		reqs = append(reqs, r)
	}
	s := NewSummary(reqs, 20*sim.Second, 1)
	pts := s.RollingQuantile(All, 1.0, 2*sim.Second, sim.Second)
	if len(pts) == 0 {
		t.Fatal("no rolling points")
	}
	// Values must be non-decreasing since latency grows with arrival.
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Fatalf("rolling max not monotone: %v", pts)
		}
	}
	// First window covers arrivals 0s,1s with latencies 1,2 -> max 2.
	if pts[0].Value != 2 {
		t.Errorf("first window value = %v, want 2", pts[0].Value)
	}
	// Degenerate parameters.
	if got := s.RollingQuantile(All, 0.5, 0, sim.Second); got != nil {
		t.Error("zero window returned points")
	}
}

func TestRecentWindowsOutcomes(t *testing.T) {
	var reqs []*request.Request
	// Arrivals at 0s, 40s, 80s; run ends at 100s.
	for i, at := range []sim.Time{0, 40 * sim.Second, 80 * sim.Second} {
		r := &request.Request{ID: uint64(i + 1), Class: batchClass(),
			Arrival: at, PromptTokens: 10, DecodeTokens: 1}
		r.RecordPrefill(10, at+sim.Second)
		reqs = append(reqs, r)
	}
	s := NewSummary(reqs, 100*sim.Second, 1)

	recent := s.Recent(30 * sim.Second)
	if recent.Count(All) != 1 || recent.Outcomes[0].Arrival != 80*sim.Second {
		t.Fatalf("30s window kept %d outcomes: %+v", recent.Count(All), recent.Outcomes)
	}
	if recent.End != s.End || recent.Replicas != s.Replicas {
		t.Error("window summary lost End/Replicas")
	}
	if got := s.Recent(70 * sim.Second).Count(All); got != 2 {
		t.Errorf("70s window count = %d, want 2", got)
	}
	// Non-positive window is the identity.
	if s.Recent(0) != s {
		t.Error("zero window did not return the summary unchanged")
	}
	// An empty window yields NaN quantiles, matching the /metrics contract.
	if q := s.Recent(sim.Millisecond).TTFTQuantile(All, 0.5); !math.IsNaN(q) {
		t.Errorf("empty window quantile = %v, want NaN", q)
	}
}

func TestMaxLatency(t *testing.T) {
	s := makeSummary(t)
	if got := s.MaxLatency(All); got != 700*sim.Second {
		t.Errorf("max latency = %v, want 700s", got)
	}
	if got := s.MaxLatency(ByClass("none")); got != 0 {
		t.Errorf("empty max latency = %v, want 0", got)
	}
}

func TestSummaryString(t *testing.T) {
	if makeSummary(t).String() == "" {
		t.Error("empty String()")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	vals := []float64{1, 2, 3, 4}
	if got := quantile(vals, 0.5); got != 2.5 {
		t.Errorf("median = %v, want 2.5", got)
	}
	if got := quantile(vals, 1.0/3); got != 2 {
		t.Errorf("q33 = %v, want 2", got)
	}
	if !math.IsNaN(quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestJainFairness(t *testing.T) {
	mk := func(class string, prompt int, violated bool) *request.Request {
		ttlt := 200 * sim.Second
		if violated {
			ttlt = 700 * sim.Second
		}
		r := &request.Request{ID: 1, Class: batchClass(), Arrival: 0,
			PromptTokens: prompt, DecodeTokens: 2}
		r.Class.Name = class
		r.RecordPrefill(prompt, 100*sim.Second)
		r.RecordDecodeToken(ttlt)
		return r
	}
	groups := []Filter{ByClass("A"), ByClass("B")}

	// Perfectly fair: both groups fully attain.
	fair := NewSummary([]*request.Request{
		mk("A", 10, false), mk("B", 10, false),
	}, 1000*sim.Second, 1)
	if got := fair.JainFairness(groups); got != 1 {
		t.Errorf("fair index = %v, want 1", got)
	}

	// Maximally unfair: A attains fully, B not at all.
	unfair := NewSummary([]*request.Request{
		mk("A", 10, false), mk("A", 10, false),
		mk("B", 10, true), mk("B", 10, true),
	}, 1000*sim.Second, 1)
	if got := unfair.JainFairness(groups); got != 0.5 {
		t.Errorf("unfair index = %v, want 0.5 (1/n)", got)
	}

	// Missing groups are skipped; single group -> 1.
	if got := fair.JainFairness([]Filter{ByClass("A"), ByClass("missing")}); got != 1 {
		t.Errorf("single-group index = %v", got)
	}

	// All-violated groups count as equal.
	allBad := NewSummary([]*request.Request{
		mk("A", 10, true), mk("B", 10, true),
	}, 1000*sim.Second, 1)
	if got := allBad.JainFairness(groups); got != 1 {
		t.Errorf("all-violated index = %v, want 1", got)
	}
}
