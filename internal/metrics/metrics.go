// Package metrics computes the evaluation quantities of the paper: TTFT /
// TBT / TTLT percentiles, deadline-violation rates sliced by QoS tier,
// request length, and priority, goodput, and rolling tail latencies for
// time-series plots.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sim"
)

// Outcome is the frozen result of one request at the end of a run.
type Outcome struct {
	ID            uint64
	Class         string
	Kind          qos.Kind
	Priority      qos.Priority
	Relegated     bool
	Arrival       sim.Time
	PromptTokens  int
	DecodeTokens  int
	Completed     bool
	TTFT          sim.Time // valid if FirstToken true
	FirstToken    bool
	TTLT          sim.Time // valid if Completed
	MaxTBT        sim.Time
	TBTViolations int
	Violated      bool // missed its SLO (TTFT or TTLT per class kind)
	// Retries counts re-enqueues after replica failures; FailedReason is
	// non-empty when the serving layer permanently gave up (such requests
	// are always Violated).
	Retries      int
	FailedReason string
}

// OutcomeOf snapshots a request's result as of time end. A request that
// has neither finished nor passed its deadline is not violated (yet); the
// caller decides whether to include such truncated requests.
func OutcomeOf(r *request.Request, end sim.Time) Outcome {
	o := Outcome{
		ID:            r.ID,
		Class:         r.Class.Name,
		Kind:          r.Class.Kind,
		Priority:      r.Priority,
		Relegated:     r.Relegated,
		Arrival:       r.Arrival,
		PromptTokens:  r.PromptTokens,
		DecodeTokens:  r.DecodeTokens,
		MaxTBT:        r.MaxTBT,
		TBTViolations: r.TBTViolations,
		Violated:      r.ViolatedSLO(end),
		Retries:       r.Retries,
		FailedReason:  r.FailedReason,
	}
	if ttft, ok := r.TTFT(); ok {
		o.TTFT, o.FirstToken = ttft, true
	}
	if ttlt, ok := r.TTLT(); ok {
		o.TTLT, o.Completed = ttlt, true
	}
	return o
}

// Latency is the per-request headline latency used in Figures 2 and 13:
// observed completion latency if finished, else first-token latency if
// produced, else the age of the request at end-of-run (a lower bound that
// correctly dominates the tail when requests are starved). The asOf
// argument is the end-of-run time.
func (o Outcome) Latency(asOf sim.Time) sim.Time {
	switch {
	case o.Completed:
		return o.TTLT
	case o.FirstToken:
		return o.TTFT
	default:
		return asOf - o.Arrival
	}
}

// Summary aggregates outcomes from one run.
type Summary struct {
	Outcomes []Outcome
	End      sim.Time // end-of-run virtual time
	Replicas int      // replicas that served the run (for per-replica goodput)
}

// NewSummary snapshots all requests at time end.
func NewSummary(reqs []*request.Request, end sim.Time, replicas int) *Summary {
	s := &Summary{End: end, Replicas: replicas}
	s.Outcomes = make([]Outcome, 0, len(reqs))
	for _, r := range reqs {
		s.Outcomes = append(s.Outcomes, OutcomeOf(r, end))
	}
	return s
}

// MixedSummary builds a summary from already-frozen outcomes of finished
// requests plus a snapshot of still-live ones. The serving gateway keeps a
// ledger of finished outcomes (so finished request objects can be pooled
// and reused) and passes its live set separately; both views land in one
// Outcomes slice, ordered finished-first.
func MixedSummary(done []Outcome, live []*request.Request, end sim.Time, replicas int) *Summary {
	s := &Summary{End: end, Replicas: replicas}
	s.Outcomes = make([]Outcome, 0, len(done)+len(live))
	s.Outcomes = append(s.Outcomes, done...)
	for _, r := range live {
		s.Outcomes = append(s.Outcomes, OutcomeOf(r, end))
	}
	return s
}

// Filter is a predicate over outcomes.
type Filter func(Outcome) bool

// All matches every outcome.
func All(Outcome) bool { return true }

// ByClass matches one QoS tier.
func ByClass(name string) Filter {
	return func(o Outcome) bool { return o.Class == name }
}

// ByPriority matches one priority tier.
func ByPriority(p qos.Priority) Filter {
	return func(o Outcome) bool { return o.Priority == p }
}

// LongerThan matches requests with prompt length >= threshold (the paper's
// "long" bucket is the p90 of the dataset's prompt distribution).
func LongerThan(tokens int) Filter {
	return func(o Outcome) bool { return o.PromptTokens >= tokens }
}

// ShorterThan matches requests with prompt length < threshold.
func ShorterThan(tokens int) Filter {
	return func(o Outcome) bool { return o.PromptTokens < tokens }
}

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	return func(o Outcome) bool {
		for _, f := range fs {
			if !f(o) {
				return false
			}
		}
		return true
	}
}

// Count returns the number of outcomes matching f.
func (s *Summary) Count(f Filter) int {
	n := 0
	for _, o := range s.Outcomes {
		if f(o) {
			n++
		}
	}
	return n
}

// ViolationRate is the fraction of matching requests that missed their SLO,
// counting unfinished requests whose deadline has passed. Requests that are
// merely truncated by end-of-run (deadline still in the future) are
// excluded from the denominator. Returns 0 for an empty selection.
func (s *Summary) ViolationRate(f Filter) float64 {
	total, violated := 0, 0
	for _, o := range s.Outcomes {
		if !f(o) {
			continue
		}
		if !o.Completed && !o.Violated {
			continue // truncated, not yet judged
		}
		total++
		if o.Violated {
			violated++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(violated) / float64(total)
}

// quantile returns the q-th quantile of a sorted slice using nearest-rank
// on the continuous index (linear interpolation).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// collect gathers a metric over matching outcomes, sorted ascending.
func (s *Summary) collect(f Filter, get func(Outcome) (float64, bool)) []float64 {
	var vals []float64
	for _, o := range s.Outcomes {
		if !f(o) {
			continue
		}
		if v, ok := get(o); ok {
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	return vals
}

// TTFTQuantile returns the q-th quantile of observed TTFT (seconds) over
// matching requests. Requests that never produced a first token contribute
// their end-of-run age, so starvation shows up in the tail instead of
// silently vanishing.
func (s *Summary) TTFTQuantile(f Filter, q float64) float64 {
	vals := s.collect(f, func(o Outcome) (float64, bool) {
		if o.FirstToken {
			return o.TTFT.Seconds(), true
		}
		return (s.End - o.Arrival).Seconds(), true
	})
	return quantile(vals, q)
}

// TTLTQuantile is like TTFTQuantile for completion latency.
func (s *Summary) TTLTQuantile(f Filter, q float64) float64 {
	vals := s.collect(f, func(o Outcome) (float64, bool) {
		if o.Completed {
			return o.TTLT.Seconds(), true
		}
		return (s.End - o.Arrival).Seconds(), true
	})
	return quantile(vals, q)
}

// LatencyQuantile is the headline request-latency quantile (see
// Outcome.Latency).
func (s *Summary) LatencyQuantile(f Filter, q float64) float64 {
	vals := s.collect(f, func(o Outcome) (float64, bool) {
		return o.Latency(s.End).Seconds(), true
	})
	return quantile(vals, q)
}

// MaxTBTQuantile returns the q-th quantile of per-request worst
// inter-token gaps (seconds) over matching requests that decoded at least
// two tokens.
func (s *Summary) MaxTBTQuantile(f Filter, q float64) float64 {
	vals := s.collect(f, func(o Outcome) (float64, bool) {
		if o.MaxTBT > 0 {
			return o.MaxTBT.Seconds(), true
		}
		return 0, false
	})
	return quantile(vals, q)
}

// TBTViolationRate is the fraction of decoded tokens that missed their TBT
// gap over matching interactive requests.
func (s *Summary) TBTViolationRate(f Filter) float64 {
	tokens, violations := 0, 0
	for _, o := range s.Outcomes {
		if !f(o) || o.Kind != qos.Interactive {
			continue
		}
		if o.DecodeTokens > 1 {
			tokens += o.DecodeTokens - 1
			violations += o.TBTViolations
		}
	}
	if tokens == 0 {
		return 0
	}
	return float64(violations) / float64(tokens)
}

// CompletionRate is the fraction of matching requests that finished.
func (s *Summary) CompletionRate(f Filter) float64 {
	total, done := 0, 0
	for _, o := range s.Outcomes {
		if !f(o) {
			continue
		}
		total++
		if o.Completed {
			done++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(done) / float64(total)
}

// RelegationRate is the fraction of matching requests relegated.
func (s *Summary) RelegationRate(f Filter) float64 {
	total, rel := 0, 0
	for _, o := range s.Outcomes {
		if !f(o) {
			continue
		}
		total++
		if o.Relegated {
			rel++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(rel) / float64(total)
}

// RetriedCount is the number of matching requests re-enqueued at least once
// after a replica failure; TotalRetries sums every retry.
func (s *Summary) RetriedCount(f Filter) (requests, retries int) {
	for _, o := range s.Outcomes {
		if !f(o) || o.Retries == 0 {
			continue
		}
		requests++
		retries += o.Retries
	}
	return requests, retries
}

// FailedCount is the number of matching requests the serving layer
// permanently failed (each carries a reason; none are silently dropped).
func (s *Summary) FailedCount(f Filter) int {
	n := 0
	for _, o := range s.Outcomes {
		if f(o) && o.FailedReason != "" {
			n++
		}
	}
	return n
}

// Goodput is requests served within SLO per second per replica — the
// paper's §4.1.2 metric.
func (s *Summary) Goodput() float64 {
	if s.End <= 0 || s.Replicas <= 0 {
		return 0
	}
	good := 0
	for _, o := range s.Outcomes {
		if o.Completed && !o.Violated {
			good++
		}
	}
	return float64(good) / s.End.Seconds() / float64(s.Replicas)
}

// MeetsSLOTarget reports whether the run satisfies the paper's goodput
// criterion: at most maxViolations fraction of requests violating (the
// paper allows 1%).
func (s *Summary) MeetsSLOTarget(maxViolations float64) bool {
	return s.ViolationRate(All) <= maxViolations
}

// String renders a one-line digest.
func (s *Summary) String() string {
	return fmt.Sprintf("Summary{n: %d, end: %v, violations: %.2f%%, goodput: %.3f req/s/replica}",
		len(s.Outcomes), s.End, 100*s.ViolationRate(All), s.Goodput())
}

// JainFairness computes Jain's fairness index over the SLO-attainment rates
// of the given groups: 1.0 means every group meets its SLOs at the same
// rate; 1/n means one group absorbs all the service. Groups with no judged
// requests are skipped; fewer than two judged groups yields 1.
func (s *Summary) JainFairness(groups []Filter) float64 {
	var rates []float64
	for _, g := range groups {
		total := 0
		for _, o := range s.Outcomes {
			if !g(o) {
				continue
			}
			if o.Completed || o.Violated {
				total++
			}
		}
		if total == 0 {
			continue
		}
		rates = append(rates, 1-s.ViolationRate(g))
	}
	if len(rates) < 2 {
		return 1
	}
	var sum, sumSq float64
	for _, r := range rates {
		sum += r
		sumSq += r * r
	}
	if sumSq == 0 {
		return 1 // all groups fully violated: equally unfair is "fair"
	}
	return sum * sum / (float64(len(rates)) * sumSq)
}
