package metrics

import (
	"sort"

	"qoserve/internal/sim"
)

// SeriesPoint is one point of a time-series metric (Figure 13).
type SeriesPoint struct {
	At    sim.Time
	Value float64
}

// RollingQuantile computes the q-th quantile of the headline latency of
// matching requests over sliding windows of the given width, keyed by
// request arrival time (the paper's Figure 13 plots a rolling p99 over 60 s
// windows against arrival time). It emits one point per stride.
func (s *Summary) RollingQuantile(f Filter, q float64, window, stride sim.Time) []SeriesPoint {
	if window <= 0 || stride <= 0 {
		return nil
	}
	type sample struct {
		at  sim.Time
		val float64
	}
	var samples []sample
	for _, o := range s.Outcomes {
		if !f(o) {
			continue
		}
		samples = append(samples, sample{at: o.Arrival, val: o.Latency(s.End).Seconds()})
	}
	if len(samples) == 0 {
		return nil
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].at < samples[j].at })

	var out []SeriesPoint
	last := samples[len(samples)-1].at
	lo := 0
	for start := samples[0].at; start <= last; start += stride {
		end := start + window
		for lo < len(samples) && samples[lo].at < start {
			lo++
		}
		hi := lo
		var vals []float64
		for hi < len(samples) && samples[hi].at < end {
			vals = append(vals, samples[hi].val)
			hi++
		}
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		out = append(out, SeriesPoint{At: start, Value: quantile(vals, q)})
	}
	return out
}

// Recent returns a Summary restricted to requests that arrived within the
// trailing window (End-window, End]. The live server's /metrics endpoint
// uses it to turn the lifetime outcome list into rolling per-class gauges:
// quantiles and violation rates over the last minute of traffic rather
// than since process start. A non-positive window returns s unchanged.
func (s *Summary) Recent(window sim.Time) *Summary {
	if window <= 0 {
		return s
	}
	cutoff := s.End - window
	out := &Summary{End: s.End, Replicas: s.Replicas}
	for _, o := range s.Outcomes {
		if o.Arrival > cutoff {
			out.Outcomes = append(out.Outcomes, o)
		}
	}
	return out
}

// MaxLatency returns the largest headline latency among matching requests,
// or zero when none match (used for the paper's §4.3 "maximum latency of
// relegated requests" comparison).
func (s *Summary) MaxLatency(f Filter) sim.Time {
	var max sim.Time
	for _, o := range s.Outcomes {
		if !f(o) {
			continue
		}
		if l := o.Latency(s.End); l > max {
			max = l
		}
	}
	return max
}
