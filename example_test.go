package qoserve_test

import (
	"fmt"
	"time"

	"qoserve"
)

// ExampleServe simulates a small three-tier workload on one replica with
// the QoServe scheduler and reports whether SLOs held.
func ExampleServe() {
	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:  qoserve.DatasetAzureCode,
		QPS:      2,
		Duration: 2 * time.Minute,
		Seed:     7,
	})
	if err != nil {
		panic(err)
	}
	report, err := qoserve.Serve(qoserve.Options{
		Hardware: qoserve.Llama3_8B_A100,
		Policy:   qoserve.PolicyQoServe,
	}, reqs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("served %d requests on %d GPU(s), violations %.1f%%\n",
		len(report.Outcomes), report.GPUs, 100*report.ViolationRate)
	// Output: served 240 requests on 1 GPU(s), violations 0.0%
}

// ExampleServe_comparison contrasts deadline-blind FCFS with QoServe on the
// same overloaded trace.
func ExampleServe_comparison() {
	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:  qoserve.DatasetAzureCode,
		QPS:      6,
		Duration: 4 * time.Minute,
		Seed:     11,
	})
	if err != nil {
		panic(err)
	}
	for _, policy := range []qoserve.Policy{qoserve.PolicySarathiFCFS, qoserve.PolicyQoServe} {
		report, err := qoserve.Serve(qoserve.Options{Policy: policy}, reqs)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s beats SLOs for %.0f%% of requests\n",
			policy, 100*(1-report.ViolationRate))
	}
	// Output:
	// sarathi-fcfs beats SLOs for 69% of requests
	// qoserve beats SLOs for 100% of requests
}

// ExampleGenerateWorkload synthesizes a bursty, partly free-tier trace.
func ExampleGenerateWorkload() {
	reqs, err := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
		Dataset:             qoserve.DatasetAzureConv,
		QPS:                 2,
		BurstQPS:            5,
		BurstPeriod:         time.Minute,
		Duration:            4 * time.Minute,
		LowPriorityFraction: 0.2,
		Seed:                1,
	})
	if err != nil {
		panic(err)
	}
	low := 0
	for _, r := range reqs {
		if r.Priority == qoserve.Low {
			low++
		}
	}
	fmt.Printf("%d requests, %d free-tier\n", len(reqs), low)
	// Output: 840 requests, 158 free-tier
}

// ExampleClass shows a custom QoS class configuration: a strict voice
// assistant tier alongside an overnight batch tier.
func ExampleClass() {
	classes := []qoserve.Class{
		{Name: "voice", Kind: qoserve.Interactive,
			TTFT: 800 * time.Millisecond, TBT: 30 * time.Millisecond},
		{Name: "nightly", Kind: qoserve.Batch, TTLT: time.Hour},
	}
	reqs := []qoserve.Request{
		{Class: "voice", PromptTokens: 150, DecodeTokens: 30},
		{Class: "nightly", Arrival: time.Second, PromptTokens: 6000, DecodeTokens: 200},
	}
	report, err := qoserve.Serve(qoserve.Options{Classes: classes}, reqs)
	if err != nil {
		panic(err)
	}
	fmt.Printf("voice TTFT under %v: %v\n",
		classes[0].TTFT, report.TTFTPercentile("voice", 1) < classes[0].TTFT)
	// Output: voice TTFT under 800ms: true
}
