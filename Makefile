# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race chaos fuzz lint verify bench bench-short bench-all bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr10 bench-gate loadgen-smoke experiments experiments-full examples quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/server ./internal/loadgen ./internal/cluster ./internal/sim

# Fault-injection scenarios under the race detector: scripted and seeded
# random fault schedules replayed twice each to assert determinism
# (cluster), plus live-gateway prefill-tier crashes asserting the
# no-silent-drop contract (server).
chaos:
	$(GO) test -race -run Chaos ./internal/cluster/ ./internal/server/

# Short fuzzing pass over every fuzz target. The committed seed corpora in
# testdata/fuzz/ always run as part of `go test`; this adds a bounded
# exploration on top.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzGenerateWorkload -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz FuzzGenerate$$ -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz FuzzReadTrace -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz FuzzParseSchedule -fuzztime $(FUZZTIME) ./internal/fault
	$(GO) test -run '^$$' -fuzz FuzzParseChain -fuzztime $(FUZZTIME) ./internal/kvcache
	$(GO) test -run '^$$' -fuzz FuzzGlobalIndexDecode -fuzztime $(FUZZTIME) ./internal/kvcache
	$(GO) test -run '^$$' -fuzz FuzzLoadSnapshotDecode -fuzztime $(FUZZTIME) ./internal/replica

# Static analysis gate: the repo's own contract analyzers (determinism,
# hot-path allocation, trace hooks, guarded fields, atomic-field
# discipline, frozen snapshots, no-silent-drop outcomes, metric wiring)
# plus staticcheck and govulncheck when they are installed. The external
# tools are optional locally — CI installs pinned versions and runs them
# unconditionally — but qoservevet itself always runs and must exit clean.
#
# The first invocation writes the machine-readable report CI archives as
# an artifact; the second audits //lint:ignore directives: any stale
# suppression (one that no longer suppresses anything) fails, and the
# live count may not exceed the committed budget below. The budget only
# ever goes DOWN: fix the code, don't widen the escape hatch.
LINT_SUPPRESSION_BUDGET ?= 16
LINT_REPORT ?= /tmp/qoservevet.json
STATICCHECK ?= staticcheck
GOVULNCHECK ?= govulncheck
lint:
	$(GO) run ./cmd/qoservevet -json -o $(LINT_REPORT) ./...
	$(GO) run ./cmd/qoservevet -suppressions -budget $(LINT_SUPPRESSION_BUDGET) ./...
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	else \
		echo "lint: $(STATICCHECK) not installed, skipping (CI runs it)"; \
	fi
	@if command -v $(GOVULNCHECK) >/dev/null 2>&1; then \
		$(GOVULNCHECK) ./...; \
	else \
		echo "lint: $(GOVULNCHECK) not installed, skipping (CI runs it)"; \
	fi

# The pre-merge gate CI runs: static checks, the full suite (seed corpora
# and chaos scenarios included) under the race detector, a short fuzzing
# pass, then the short benchmark pass. The allocation guards
# (TestPlanBatchSteadyStateAllocFree, TestForestPredictAllocFree) run as
# ordinary tests, so an alloc regression on the plan path fails the gate.
verify:
	$(GO) vet ./...
	$(MAKE) lint
	$(GO) test -race ./...
	$(MAKE) fuzz
	$(MAKE) bench-short
	$(MAKE) bench-gate

# Benchmark baseline: one pass over every table/figure benchmark plus the
# scheduler/predictor hot-path micro-benchmarks, folded into BENCH_PR3.json
# (committed trajectory file; CI archives it as an artifact). BENCHTIME=1x
# keeps it cheap enough for CI; raise it locally for tighter ns/op numbers.
BENCHTIME ?= 1x
BENCHOUT  ?= BENCH_PR3.json
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . | tee /tmp/bench_experiments.txt
	$(GO) test -run '^$$' -bench . -benchmem ./internal/core ./internal/predictor | tee /tmp/bench_micro.txt
	$(GO) run ./cmd/benchjson -o $(BENCHOUT) \
		-meta benchtime=$(BENCHTIME) \
		/tmp/bench_experiments.txt /tmp/bench_micro.txt
	@echo "wrote $(BENCHOUT)"

# Short benchmark pass for `verify`/CI: hot-path micro-benchmarks only (the
# experiment-level benchmarks at the repo root replay whole traces and take
# minutes even at -benchtime 1x). Writes a throwaway snapshot for the CI
# artifact; the committed BENCH_PR3.json is only refreshed via `make bench`.
bench-short:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/core ./internal/predictor | tee /tmp/bench_micro.txt
	$(GO) run ./cmd/benchjson -o /tmp/BENCH_short.json -meta mode=short /tmp/bench_micro.txt

# Micro-benchmarks across all packages.
bench-all:
	$(GO) test -bench . -benchmem ./...

# Gateway benchmark baseline: contended end-to-end throughput (32 parallel
# closed-loop submitters per GOMAXPROCS against 1/4/8 serving replicas —
# replicas=1 is the old single-lock architecture's ceiling) plus the
# per-token fan-out micro-benchmark, folded into the committed
# BENCH_PR5.json with the single-lock vs sharded req/s recorded as meta.
BENCH5OUT ?= BENCH_PR5.json
bench-pr5:
	$(GO) test -run '^$$' -bench GatewayContended -benchtime 2s ./internal/server/ | tee /tmp/bench_gateway.txt
	$(GO) test -run '^$$' -bench TokenFanout -benchmem ./internal/server/ | tee /tmp/bench_fanout.txt
	$(GO) run ./cmd/benchjson -o $(BENCH5OUT) \
		-meta note="req/s under 32 parallel closed-loop submitters; replicas=1 is the single-lock baseline" \
		-meta single_lock_req_s="$$(awk '/Replicas1 /{print $$(NF-1)}' /tmp/bench_gateway.txt)" \
		-meta sharded_4x_req_s="$$(awk '/Replicas4 /{print $$(NF-1)}' /tmp/bench_gateway.txt)" \
		-meta sharded_8x_req_s="$$(awk '/Replicas8 /{print $$(NF-1)}' /tmp/bench_gateway.txt)" \
		/tmp/bench_gateway.txt /tmp/bench_fanout.txt
	@echo "wrote $(BENCH5OUT)"

# Prefix-cache benchmark baseline: session-heavy (multi-turn, shared-prefix)
# closed-loop load end to end through a 4-replica gateway under each routing
# policy. PrefixAffinity should beat AtomicRoundRobin on both req/s and TTFT
# because follow-up turns land where their prefix is cached and skip the
# re-prefill; the headline numbers are folded into BENCH_PR6.json as meta.
BENCH6OUT ?= BENCH_PR6.json
bench-pr6:
	$(GO) test -run '^$$' -bench SessionBalancer -benchtime 3x ./internal/loadgen/ | tee /tmp/bench_prefix.txt
	$(GO) run ./cmd/benchjson -o $(BENCH6OUT) \
		-meta note="400 requests, 8-turn sessions, prompt p50 1024 / decode p50 12, 4 replicas" \
		-meta round_robin_req_s="$$(awk '/RoundRobin/{for(i=2;i<=NF;i++)if($$i=="req/s")print $$(i-1)}' /tmp/bench_prefix.txt)" \
		-meta prefix_req_s="$$(awk '/BalancerPrefix/{for(i=2;i<=NF;i++)if($$i=="req/s")print $$(i-1)}' /tmp/bench_prefix.txt)" \
		-meta round_robin_ttft_p50_ms="$$(awk '/RoundRobin/{for(i=2;i<=NF;i++)if($$i=="ttft_p50_ms")print $$(i-1)}' /tmp/bench_prefix.txt)" \
		-meta prefix_ttft_p50_ms="$$(awk '/BalancerPrefix/{for(i=2;i<=NF;i++)if($$i=="ttft_p50_ms")print $$(i-1)}' /tmp/bench_prefix.txt)" \
		/tmp/bench_prefix.txt
	@echo "wrote $(BENCH6OUT)"

# Predicted-latency benchmark baseline: a long-prefill-heavy workload
# (prompt p90 4096 / max 16K, short outputs) end to end through a
# 4-replica gateway. Occupancy balancing counts a 16K prompt and a
# 128-token prompt as the same unit of load, so PredictedLatency — which
# scores the forest over each replica's live queue snapshot — should beat
# LeastLoaded on P90 TTFT in both the colocated and the disaggregated
# (2 prefill + 2 decode) gateway; the headline P90s land in BENCH_PR7.json
# as meta.
BENCH7OUT ?= BENCH_PR7.json
bench-pr7:
	$(GO) test -run '^$$' -bench LongPrefill -benchtime 3x ./internal/loadgen/ | tee /tmp/bench_predicted.txt
	$(GO) run ./cmd/benchjson -o $(BENCH7OUT) \
		-meta note="300 requests, prompt p50 512 / p90 4096 / max 16384, decode p50 8, 4 replicas (disagg: 2 prefill + 2 decode)" \
		-meta colocated_least_loaded_ttft_p90_ms="$$(awk '/ColocatedLeastLoaded/{for(i=2;i<=NF;i++)if($$i=="ttft_p90_ms")print $$(i-1)}' /tmp/bench_predicted.txt)" \
		-meta colocated_predicted_ttft_p90_ms="$$(awk '/ColocatedPredicted/{for(i=2;i<=NF;i++)if($$i=="ttft_p90_ms")print $$(i-1)}' /tmp/bench_predicted.txt)" \
		-meta disagg_least_loaded_ttft_p90_ms="$$(awk '/DisaggLeastLoaded/{for(i=2;i<=NF;i++)if($$i=="ttft_p90_ms")print $$(i-1)}' /tmp/bench_predicted.txt)" \
		-meta disagg_predicted_ttft_p90_ms="$$(awk '/DisaggPredicted/{for(i=2;i<=NF;i++)if($$i=="ttft_p90_ms")print $$(i-1)}' /tmp/bench_predicted.txt)" \
		/tmp/bench_predicted.txt
	@echo "wrote $(BENCH7OUT)"

# Cross-replica KV transfer baseline: long-prompt multi-turn sessions end
# to end through a 4-replica colocated gateway. The PR 6 baseline (prefix
# affinity, recompute on a routing miss) pins sessions to their holders, so
# hot replicas stack long prefills; the transfer-enabled predicted balancer
# imports cached prefixes over a modeled 64 GB/s interconnect and must beat
# it on req/s and TTFT p50/p90 with non-zero prefix_transfer_tokens.
BENCH8OUT  ?= BENCH_PR8.json
BENCH8TIME ?= 3x
bench-pr8:
	$(GO) test -run '^$$' -bench SessionPrefix -benchtime $(BENCH8TIME) ./internal/loadgen/ | tee /tmp/bench_transfer.txt
	$(GO) run ./cmd/benchjson -o $(BENCH8OUT) \
		-meta note="320 requests, 8-turn sessions, prompt p50 1024 / max 8192, 4 replicas, 64 GB/s KV interconnect" \
		-meta recompute_req_s="$$(awk '/AffinityRecompute/{for(i=2;i<=NF;i++)if($$i=="req/s")print $$(i-1)}' /tmp/bench_transfer.txt)" \
		-meta transfer_req_s="$$(awk '/PredictedTransfer/{for(i=2;i<=NF;i++)if($$i=="req/s")print $$(i-1)}' /tmp/bench_transfer.txt)" \
		-meta recompute_ttft_p50_ms="$$(awk '/AffinityRecompute/{for(i=2;i<=NF;i++)if($$i=="ttft_p50_ms")print $$(i-1)}' /tmp/bench_transfer.txt)" \
		-meta transfer_ttft_p50_ms="$$(awk '/PredictedTransfer/{for(i=2;i<=NF;i++)if($$i=="ttft_p50_ms")print $$(i-1)}' /tmp/bench_transfer.txt)" \
		-meta recompute_ttft_p90_ms="$$(awk '/AffinityRecompute/{for(i=2;i<=NF;i++)if($$i=="ttft_p90_ms")print $$(i-1)}' /tmp/bench_transfer.txt)" \
		-meta transfer_ttft_p90_ms="$$(awk '/PredictedTransfer/{for(i=2;i<=NF;i++)if($$i=="ttft_p90_ms")print $$(i-1)}' /tmp/bench_transfer.txt)" \
		-meta transfer_prefix_transfer_tokens="$$(awk '/PredictedTransfer/{for(i=2;i<=NF;i++)if($$i=="prefix_transfer_tokens")print $$(i-1)}' /tmp/bench_transfer.txt)" \
		/tmp/bench_transfer.txt
	@echo "wrote $(BENCH8OUT)"

# Token-path benchmark baseline (PR 10): the same contended closed-loop
# workload against 8 replicas in both delivery modes. Unbatched
# (EventFrame=0) is the PR 8 configuration — a fresh request, stream
# entry, and per-token channel per submission; the batched-frame run
# recycles all three through free lists and coalesces each iteration's
# tokens into one pooled frame, so allocs/op must drop to 0. The headline
# before/after req/s, TTFT p50/p90, and allocs/req land in BENCH_PR10.json
# as meta alongside the raw benchmark entries benchgate diffs.
BENCH10OUT  ?= BENCH_PR10.json
BENCH10TIME ?= 2s
bench-pr10:
	$(GO) test -run '^$$' -bench 'GatewayUnbatchedReplicas8|GatewayFrameReplicas8' -benchmem \
		-benchtime $(BENCH10TIME) ./internal/server/ | tee /tmp/bench_tokenpath.txt
	$(GO) run ./cmd/benchjson -o $(BENCH10OUT) \
		-meta note="32 parallel closed-loop submitters, Q2 512/2, 8 replicas; unbatched = PR 8 per-token channels, frame = EventFrame 16 pooled frames" \
		-meta unbatched_req_s="$$(awk '/GatewayUnbatchedReplicas8/{for(i=2;i<=NF;i++)if($$i=="req/s")print $$(i-1)}' /tmp/bench_tokenpath.txt)" \
		-meta frame_req_s="$$(awk '/GatewayFrameReplicas8/{for(i=2;i<=NF;i++)if($$i=="req/s")print $$(i-1)}' /tmp/bench_tokenpath.txt)" \
		-meta unbatched_ttft_p50_ms="$$(awk '/GatewayUnbatchedReplicas8/{for(i=2;i<=NF;i++)if($$i=="ttft_p50_ms")print $$(i-1)}' /tmp/bench_tokenpath.txt)" \
		-meta frame_ttft_p50_ms="$$(awk '/GatewayFrameReplicas8/{for(i=2;i<=NF;i++)if($$i=="ttft_p50_ms")print $$(i-1)}' /tmp/bench_tokenpath.txt)" \
		-meta unbatched_ttft_p90_ms="$$(awk '/GatewayUnbatchedReplicas8/{for(i=2;i<=NF;i++)if($$i=="ttft_p90_ms")print $$(i-1)}' /tmp/bench_tokenpath.txt)" \
		-meta frame_ttft_p90_ms="$$(awk '/GatewayFrameReplicas8/{for(i=2;i<=NF;i++)if($$i=="ttft_p90_ms")print $$(i-1)}' /tmp/bench_tokenpath.txt)" \
		-meta unbatched_allocs_per_req="$$(awk '/GatewayUnbatchedReplicas8/{for(i=2;i<=NF;i++)if($$i=="allocs/op")print $$(i-1)}' /tmp/bench_tokenpath.txt)" \
		-meta frame_allocs_per_req="$$(awk '/GatewayFrameReplicas8/{for(i=2;i<=NF;i++)if($$i=="allocs/op")print $$(i-1)}' /tmp/bench_tokenpath.txt)" \
		/tmp/bench_tokenpath.txt
	@echo "wrote $(BENCH10OUT)"

# Benchmark regression gate for `verify`/CI: re-measure the PR 10
# token-path pair in a short pass and diff against the committed
# BENCH_PR10.json with cmd/benchgate. Timing tolerance is generous (the
# gate hunts structural regressions, not scheduler noise on shared CI
# machines); allocs/op is tight, and a 0-alloc baseline allows no growth
# at all.
GATETIME      ?= 1s
GATETOL       ?= 0.6
GATETOLALLOCS ?= 0.3
bench-gate:
	$(GO) test -run '^$$' -bench 'GatewayUnbatchedReplicas8|GatewayFrameReplicas8' -benchmem \
		-benchtime $(GATETIME) ./internal/server/ | tee /tmp/bench_gate_fresh.txt
	$(GO) run ./cmd/benchjson -o /tmp/BENCH_PR10_fresh.json -meta mode=gate /tmp/bench_gate_fresh.txt
	$(GO) run ./cmd/benchgate -baseline $(BENCH10OUT) -current /tmp/BENCH_PR10_fresh.json \
		-tol $(GATETOL) -tol-allocs $(GATETOLALLOCS)

# Deterministic loadgen smoke: a few hundred milliseconds of closed-loop
# load against a 2-replica gateway with a fixed seed. The tool exits
# non-zero unless every request completes with zero dropped stream events,
# so this is the CI no-silent-drop gate.
loadgen-smoke:
	$(GO) run ./cmd/qoserve-loadgen -policy sarathi-fcfs -replicas 2 \
		-n 80 -workers 8 -timescale 500 -seed 7 -json

# Default-scale reproduction of every paper artifact (plus extensions).
experiments:
	$(GO) run ./cmd/experiments all

# Quarter-length traces: slower, quantitatively tighter.
experiments-full:
	$(GO) run ./cmd/experiments -scale 0.25 all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/overload
	$(GO) run ./examples/walkthrough
	$(GO) run ./examples/loadtest

# Fast validation in the spirit of the paper artifact's tester.sh:
# the headline shape probes plus the full unit suite in short mode.
quick:
	$(GO) test -short ./...
	$(GO) test ./internal/experiments -run Probe -v

clean:
	$(GO) clean ./...
