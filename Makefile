# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race verify bench experiments experiments-full examples quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/server ./internal/sim

# The pre-merge gate CI runs: static checks plus the full suite under the
# race detector.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

# One pass over every table/figure benchmark.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Micro-benchmarks across all packages.
bench-all:
	$(GO) test -bench . -benchmem ./...

# Default-scale reproduction of every paper artifact (plus extensions).
experiments:
	$(GO) run ./cmd/experiments all

# Quarter-length traces: slower, quantitatively tighter.
experiments-full:
	$(GO) run ./cmd/experiments -scale 0.25 all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/overload
	$(GO) run ./examples/walkthrough
	$(GO) run ./examples/loadtest

# Fast validation in the spirit of the paper artifact's tester.sh:
# the headline shape probes plus the full unit suite in short mode.
quick:
	$(GO) test -short ./...
	$(GO) test ./internal/experiments -run Probe -v

clean:
	$(GO) clean ./...
