# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race chaos fuzz verify bench experiments experiments-full examples quick clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./internal/server ./internal/sim

# Fault-injection scenarios under the race detector: scripted and seeded
# random fault schedules, replayed twice each to assert determinism.
chaos:
	$(GO) test -race -run Chaos ./internal/cluster/

# Short fuzzing pass over every fuzz target. The committed seed corpora in
# testdata/fuzz/ always run as part of `go test`; this adds a bounded
# exploration on top.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzGenerateWorkload -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz FuzzGenerate$$ -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz FuzzReadTrace -fuzztime $(FUZZTIME) ./internal/workload
	$(GO) test -run '^$$' -fuzz FuzzParseSchedule -fuzztime $(FUZZTIME) ./internal/fault

# The pre-merge gate CI runs: static checks, the full suite (seed corpora
# and chaos scenarios included) under the race detector, then a short
# fuzzing pass.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) fuzz

# One pass over every table/figure benchmark.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x .

# Micro-benchmarks across all packages.
bench-all:
	$(GO) test -bench . -benchmem ./...

# Default-scale reproduction of every paper artifact (plus extensions).
experiments:
	$(GO) run ./cmd/experiments all

# Quarter-length traces: slower, quantitatively tighter.
experiments-full:
	$(GO) run ./cmd/experiments -scale 0.25 all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/multitenant
	$(GO) run ./examples/overload
	$(GO) run ./examples/walkthrough
	$(GO) run ./examples/loadtest

# Fast validation in the spirit of the paper artifact's tester.sh:
# the headline shape probes plus the full unit suite in short mode.
quick:
	$(GO) test -short ./...
	$(GO) test ./internal/experiments -run Probe -v

clean:
	$(GO) clean ./...
