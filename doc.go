// Package qoserve is a QoS-driven LLM inference serving framework and
// simulator, reproducing "QoServe: Breaking the Silos of LLM Inference
// Serving" (ASPLOS 2026).
//
// QoServe co-schedules requests from multiple Quality-of-Service classes —
// interactive traffic with TTFT/TBT targets and batch traffic with TTLT
// targets — on shared serving replicas, instead of operating one siloed
// cluster per class. Three techniques make that efficient:
//
//   - Dynamic chunking: every iteration, the prefill chunk is sized to the
//     largest value whose predicted latency fits the minimum deadline slack
//     of the in-flight decodes, so relaxed tiers' slack buys throughput.
//   - Hybrid prioritization: prefill order follows
//     priority = arrival + SLO + alpha*(remaining work), smoothly
//     interpolating Earliest-Deadline-First and Shortest-Remaining-First.
//   - Eager relegation: requests that have missed (or provably will miss)
//     their deadline move to a relegated queue served with spare capacity
//     only, protecting the majority from cascading violations; free-tier
//     requests are relegated before paid-tier ones.
//
// Because this reproduction has no GPUs, execution happens on a calibrated
// discrete-event simulator: an analytic roofline cost model maps each
// mixed prefill/decode batch to an iteration latency for the paper's three
// model/hardware configurations (Llama3-8B on A100, Qwen-7B on 2xA100,
// Llama3-70B on 4xH100). Scheduling behaviour — the paper's entire
// contribution — depends on hardware only through that mapping. See
// DESIGN.md for the substitution inventory and EXPERIMENTS.md for
// paper-vs-measured results.
//
// # Quick start
//
//	classes := qoserve.DefaultClasses() // Q1 interactive, Q2/Q3 batch
//	reqs, _ := qoserve.GenerateWorkload(qoserve.WorkloadSpec{
//		Dataset:  qoserve.DatasetAzureCode,
//		Classes:  classes,
//		QPS:      3,
//		Duration: 10 * time.Minute,
//		Seed:     1,
//	})
//	report, _ := qoserve.Serve(qoserve.Options{
//		Hardware: qoserve.Llama3_8B_A100,
//		Policy:   qoserve.PolicyQoServe,
//		Replicas: 1,
//		Classes:  classes,
//	}, reqs)
//	fmt.Printf("violations: %.2f%%\n", 100*report.ViolationRate)
//
// The cmd/experiments binary regenerates every table and figure of the
// paper's evaluation; the examples/ directory contains runnable scenarios.
package qoserve
