// Benchmarks regenerating every table and figure of the paper's evaluation.
//
// Each BenchmarkFigN / BenchmarkTableN runs the corresponding experiment
// harness end to end (workload synthesis, simulation sweep, row printing
// suppressed) at a reduced scale, so `go test -bench .` exercises the full
// reproduction pipeline. For readable output at larger scales, use
// `go run ./cmd/experiments -scale 0.25 all` instead; EXPERIMENTS.md records
// paper-vs-measured values.
package qoserve_test

import (
	"io"
	"testing"

	"qoserve/internal/experiments"
)

// benchScale keeps each benchmark iteration tractable: ~5-minute simulated
// traces. Shapes (who wins, crossover ordering) hold at this scale; see
// EXPERIMENTS.md for the scaling discussion.
const benchScale = 0.02

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		env := experiments.NewEnv(benchScale, io.Discard)
		if err := experiments.RunByName(name, env); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: FCFS/SJF/SRPF/EDF/QoServe latency and
// violation curves for the strictest tier across a load sweep.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig4 regenerates Figure 4: the chunk-size throughput/latency
// trade-off.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5: eager relegation versus none under
// rising load.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig7 regenerates Figure 7: max goodput per replica across three
// models and three datasets for Sarathi-FCFS, Sarathi-EDF, and QoServe.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8: prefill goodput under PD
// disaggregation.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: dynamic chunk sizes across
// consecutive batches.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10: per-tier TTFT percentiles versus
// load under overload.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: deadline violations by tier and
// request length versus load.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12: the diurnal transient-overload
// violation table split by priority and tier.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13: rolling p99 latency of
// high-priority requests during the diurnal run.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Figure 14: the hybrid-prioritization alpha
// sweep.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15a regenerates Figure 15a: Medha's adaptive chunking versus
// QoServe's dynamic chunking on the synthetic long-prompt trace.
func BenchmarkFig15a(b *testing.B) { benchExperiment(b, "fig15a") }

// BenchmarkFig15b regenerates Figure 15b: PolyServe partitioned deployments
// versus QoServe colocation GPU counts.
func BenchmarkFig15b(b *testing.B) { benchExperiment(b, "fig15b") }

// BenchmarkTable4 regenerates Table 4: the cluster-scale siloed-vs-shared
// GPU comparison.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5 regenerates Table 5: the DC/ER/HP ablation ladder.
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTable6 regenerates Table 6: skewed workload compositions.
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkSLOVar regenerates the §4.4.2 varying-SLO capacity comparison.
func BenchmarkSLOVar(b *testing.B) { benchExperiment(b, "slovar") }

// BenchmarkPreemptAblation measures selective preemption on/off (extra
// ablation called out in DESIGN.md).
func BenchmarkPreemptAblation(b *testing.B) { benchExperiment(b, "preempt") }

// BenchmarkPredictorAblation measures oracle vs forest vs margin-free
// forest predictors (extra ablation called out in DESIGN.md).
func BenchmarkPredictorAblation(b *testing.B) { benchExperiment(b, "predablate") }

// BenchmarkEstimatorAblation measures oracle decode lengths vs the per-app
// mean+2-sigma history estimator (§4.4.1 claim).
func BenchmarkEstimatorAblation(b *testing.B) { benchExperiment(b, "estimator") }

// BenchmarkSLOsServeComparison measures the §4.5.3 DP-scheduling overhead
// comparison.
func BenchmarkSLOsServeComparison(b *testing.B) { benchExperiment(b, "slosserve") }

// BenchmarkVLLMBaseline measures the extra vanilla-vLLM baseline sweep.
func BenchmarkVLLMBaseline(b *testing.B) { benchExperiment(b, "vllm") }

// BenchmarkLoadBalancerAblation measures round-robin vs least-pending
// routing.
func BenchmarkLoadBalancerAblation(b *testing.B) { benchExperiment(b, "lb") }

// BenchmarkOverloadMgmt measures the §2.2 overload-mechanism comparison
// (rate limiting vs SJF vs eager relegation).
func BenchmarkOverloadMgmt(b *testing.B) { benchExperiment(b, "overloadmgmt") }

// BenchmarkBurstiness measures the gamma-CV arrival robustness extension.
func BenchmarkBurstiness(b *testing.B) { benchExperiment(b, "burst") }

// BenchmarkPipeline measures the end-to-end PD-disaggregation extension.
func BenchmarkPipeline(b *testing.B) { benchExperiment(b, "pipeline") }

// BenchmarkAutoscale measures the fixed-vs-elastic fleet extension.
func BenchmarkAutoscale(b *testing.B) { benchExperiment(b, "autoscale") }

// BenchmarkSessions measures the closed-loop conversation extension.
func BenchmarkSessions(b *testing.B) { benchExperiment(b, "sessions") }

// BenchmarkMultiApp measures the heterogeneous-applications extension.
func BenchmarkMultiApp(b *testing.B) { benchExperiment(b, "multiapp") }
