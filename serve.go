package qoserve

import (
	"fmt"
	"sort"
	"time"

	"qoserve/internal/cluster"
	"qoserve/internal/core"
	"qoserve/internal/fault"
	"qoserve/internal/metrics"
	"qoserve/internal/model"
	"qoserve/internal/predictor"
	"qoserve/internal/profile"
	"qoserve/internal/qos"
	"qoserve/internal/request"
	"qoserve/internal/sched"
	"qoserve/internal/sim"
)

// Outcome is the per-request result of a serving run.
type Outcome struct {
	ID        uint64
	Class     string
	Priority  Priority
	Completed bool
	Relegated bool
	// Violated reports whether the request missed its SLO: TTFT for
	// interactive classes, TTLT for batch classes.
	Violated bool
	// TTFT is the observed time to first token (zero if none produced).
	TTFT time.Duration
	// TTLT is the observed completion latency (zero if unfinished).
	TTLT time.Duration
	// MaxTBT is the worst inter-token gap observed.
	MaxTBT time.Duration
	// Retries counts how many times the request was re-enqueued after a
	// replica crash (each retry discarded its KV progress).
	Retries int
	// Failed reports that the cluster permanently gave up on the request;
	// FailReason says why. Failed requests count as violated.
	Failed     bool
	FailReason string
}

// Report aggregates a serving run.
type Report struct {
	Outcomes []Outcome
	// Duration is the virtual time the run covered.
	Duration time.Duration
	// Replicas is the number of serving replicas (GPUs = Replicas x TP).
	Replicas int
	// GPUs is the total GPU count.
	GPUs int
	// ViolationRate is the fraction of judged requests that missed their
	// SLO (requests truncated before their deadline are excluded).
	ViolationRate float64
	// RelegationRate is the fraction of requests eagerly relegated.
	RelegationRate float64
	// Goodput is requests served within SLO per second per replica.
	Goodput float64
	// Faults aggregates failure and recovery counters; nil when the run
	// injected no faults.
	Faults *FaultReport

	summary *metrics.Summary
}

// ViolationRateOf reports the violation rate of one class.
func (r *Report) ViolationRateOf(class string) float64 {
	return r.summary.ViolationRate(metrics.ByClass(class))
}

// TTFTPercentile reports the q-th quantile (0..1) of TTFT over a class
// (starved requests contribute their end-of-run age).
func (r *Report) TTFTPercentile(class string, q float64) time.Duration {
	return secondsToDuration(r.summary.TTFTQuantile(metrics.ByClass(class), q))
}

// TTLTPercentile reports the q-th quantile of completion latency over a
// class.
func (r *Report) TTLTPercentile(class string, q float64) time.Duration {
	return secondsToDuration(r.summary.TTLTQuantile(metrics.ByClass(class), q))
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// predictorCache memoizes trained forests per hardware configuration so
// repeated Serve calls do not retrain.
var predictorCache = map[string]predictor.SafePredictor{}

func predictorFor(mc model.Config) (predictor.SafePredictor, error) {
	if p, ok := predictorCache[mc.Name()]; ok {
		return p, nil
	}
	samples, err := profile.Collect(mc, profile.Config{Seed: 1})
	if err != nil {
		return nil, err
	}
	f, err := predictor.Train(samples, predictor.ForestConfig{Seed: 1})
	if err != nil {
		return nil, err
	}
	predictorCache[mc.Name()] = f
	return f, nil
}

// factoryFor builds the scheduler factory for the options.
func factoryFor(o Options, mc model.Config) (cluster.SchedulerFactory, error) {
	chunk := o.Chunk
	if chunk == 0 {
		chunk = sched.DefaultChunk
	}
	switch o.Policy {
	case PolicyQoServe, "":
		pred, err := predictorFor(mc)
		if err != nil {
			return nil, err
		}
		opts := o.QoServe.options()
		return func() sched.Scheduler { return core.New(pred, opts) }, nil
	case PolicySarathiFCFS:
		return func() sched.Scheduler { return sched.NewSarathi(sched.FCFS, chunk) }, nil
	case PolicySarathiEDF:
		return func() sched.Scheduler { return sched.NewSarathi(sched.EDF, chunk) }, nil
	case PolicySarathiSJF:
		return func() sched.Scheduler { return sched.NewSarathi(sched.SJF, chunk) }, nil
	case PolicySarathiSRPF:
		return func() sched.Scheduler { return sched.NewSarathi(sched.SRPF, chunk) }, nil
	case PolicyMedha:
		pred, err := predictorFor(mc)
		if err != nil {
			return nil, err
		}
		tbt := 50 * sim.Millisecond
		return func() sched.Scheduler { return sched.NewMedha(pred, tbt, 4096) }, nil
	default:
		return nil, fmt.Errorf("qoserve: unknown policy %q", o.Policy)
	}
}

// Serve simulates the configured deployment serving the requests and
// returns the aggregated report. Requests may be supplied in any order;
// they are served by arrival time.
func Serve(o Options, reqs []Request) (*Report, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("qoserve: no requests")
	}
	mc := o.Hardware.config()
	_, classMap, err := o.classes()
	if err != nil {
		return nil, err
	}

	// Register explicit IDs first so auto-assignment never collides with
	// an explicit ID appearing later in the slice.
	seen := make(map[uint64]bool, len(reqs))
	for _, r := range reqs {
		if r.ID == 0 {
			continue
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("qoserve: duplicate request ID %d", r.ID)
		}
		seen[r.ID] = true
	}
	trace := make([]*request.Request, 0, len(reqs))
	nextID := uint64(1)
	for _, r := range reqs {
		id := r.ID
		if id == 0 {
			for seen[nextID] {
				nextID++
			}
			id = nextID
			seen[id] = true
		}
		ir, err := r.toInternal(id, classMap)
		if err != nil {
			return nil, err
		}
		trace = append(trace, ir)
	}
	sort.Slice(trace, func(i, j int) bool {
		if trace[i].Arrival != trace[j].Arrival {
			return trace[i].Arrival < trace[j].Arrival
		}
		return trace[i].ID < trace[j].ID
	})

	horizon := horizonFor(trace)
	if o.Horizon > 0 {
		horizon = sim.FromDuration(o.Horizon)
	}

	var (
		sum      *metrics.Summary
		replicas int
		faults   *FaultReport
	)
	if len(o.Silos) > 0 {
		if o.Faults.enabled() {
			return nil, fmt.Errorf("qoserve: fault injection requires a shared cluster, not silos")
		}
		replicas = 0
		for _, n := range o.Silos {
			replicas += n
		}
		strictest := strictestInteractive(classMap)
		plan := cluster.SiloPlan{
			Replicas: o.Silos,
			Factory: func(class string) sched.Scheduler {
				if class == strictest {
					return sched.NewSarathi(sched.FCFS, sched.DefaultChunk)
				}
				return sched.NewSarathi(sched.FCFS, sched.RelaxedChunk)
			},
		}
		sum, err = cluster.RunSiloed(mc, plan, trace, horizon)
	} else {
		replicas = o.Replicas
		if replicas == 0 {
			replicas = 1
		}
		var factory cluster.SchedulerFactory
		factory, err = factoryFor(o, mc)
		if err != nil {
			return nil, err
		}
		if o.Faults.enabled() {
			var schedule fault.Schedule
			schedule, err = o.Faults.schedule(replicas, horizon)
			if err != nil {
				return nil, err
			}
			rec := cluster.Recovery{
				MaxRetries:  o.Faults.MaxRetries,
				Backoff:     sim.FromDuration(o.Faults.RetryBackoff),
				ParkTimeout: sim.FromDuration(o.Faults.ParkTimeout),
			}
			var stats cluster.FaultStats
			sum, stats, err = cluster.RunFaulty(mc, replicas, factory, trace, horizon, schedule, rec)
			if err == nil {
				faults = &FaultReport{
					Crashes:        stats.Crashes,
					Restarts:       stats.Restarts,
					Retries:        stats.Retries,
					LostTokens:     stats.LostTokens,
					FailedRequests: stats.FailedRequests,
				}
			}
		} else {
			sum, err = cluster.RunShared(mc, replicas, factory, trace, horizon)
		}
	}
	if err != nil {
		return nil, err
	}
	rep := buildReport(sum, mc, replicas)
	rep.Faults = faults
	return rep, nil
}

// schedule materializes the plan's injection schedule for a cluster of the
// given size over the given horizon.
func (p FaultPlan) schedule(replicas int, horizon sim.Time) (fault.Schedule, error) {
	if p.Schedule != "" {
		s, err := fault.ParseSchedule(p.Schedule)
		if err != nil {
			return nil, err
		}
		if err := s.Validate(replicas); err != nil {
			return nil, err
		}
		return s, nil
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	return fault.Random(fault.RandomConfig{
		Seed:     seed,
		Replicas: replicas,
		Horizon:  horizon,
		MTBF:     sim.FromDuration(p.MTBF),
		MTTR:     sim.FromDuration(p.MTTR),
	})
}

// horizonFor judges every request definitively: last arrival plus the
// largest applicable SLO plus a margin.
func horizonFor(trace []*request.Request) sim.Time {
	var last, maxSLO sim.Time
	for _, r := range trace {
		if r.Arrival > last {
			last = r.Arrival
		}
		slo := r.Class.SLO.TTLT
		if r.Class.Kind == qos.Interactive {
			slo = r.Class.SLO.TTFT
		}
		if slo > maxSLO {
			maxSLO = slo
		}
	}
	return last + maxSLO + sim.Minute
}

func strictestInteractive(classes map[string]qos.Class) string {
	best := ""
	var bestTBT sim.Time
	for name, c := range classes {
		if c.Kind != qos.Interactive {
			continue
		}
		if best == "" || c.SLO.TBT < bestTBT {
			best, bestTBT = name, c.SLO.TBT
		}
	}
	return best
}

func buildReport(sum *metrics.Summary, mc model.Config, replicas int) *Report {
	rep := &Report{
		Duration:       sum.End.Duration(),
		Replicas:       replicas,
		GPUs:           replicas * mc.GPUs(),
		ViolationRate:  sum.ViolationRate(metrics.All),
		RelegationRate: sum.RelegationRate(metrics.All),
		Goodput:        sum.Goodput(),
		summary:        sum,
	}
	rep.Outcomes = make([]Outcome, 0, len(sum.Outcomes))
	for _, o := range sum.Outcomes {
		prio := High
		if o.Priority == qos.Low {
			prio = Low
		}
		out := Outcome{
			ID:         o.ID,
			Class:      o.Class,
			Priority:   prio,
			Completed:  o.Completed,
			Relegated:  o.Relegated,
			Violated:   o.Violated,
			MaxTBT:     o.MaxTBT.Duration(),
			Retries:    o.Retries,
			Failed:     o.FailedReason != "",
			FailReason: o.FailedReason,
		}
		if o.FirstToken {
			out.TTFT = o.TTFT.Duration()
		}
		if o.Completed {
			out.TTLT = o.TTLT.Duration()
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	return rep
}
